//! The boot simulation proper.

use crate::model::{CpuModel, DiskModel, PageCache};
use squirrel_dataset::BootTrace;
use squirrel_zfs::{RecordLoc, ZPool};

/// QCOW2's default cluster size: every VM read reaches the backend in
/// cluster-granular requests (paper Section 4.2.3).
pub const QCOW2_CLUSTER: u64 = 64 * 1024;

/// Parameters of a dedup+compressed cVolume backend, measured from a real
/// [`squirrel_zfs::ZPool`] holding the cache corpus and scaled to paper
/// volume by the experiment harness.
#[derive(Clone, Copy, Debug)]
pub struct DedupVolumeParams {
    /// ZFS record size (the cVolume block size under test).
    pub record_size: u64,
    /// Mean compressed fraction of a record (psize / record size).
    pub compressed_fraction: f64,
    /// Dedup-table entries in the pool (drives lookup cost).
    pub ddt_entries: u64,
    /// Physical bytes of the pool (the span scattered reads seek across).
    pub pool_physical_bytes: u64,
    /// Fraction of this cache's records that dedup against *other* caches
    /// (their physical location is wherever the first writer put them) —
    /// the cache cross-similarity at this record size.
    pub shared_fraction: f64,
    /// Fraction of shared records resident in the ARC because other VMIs'
    /// boots keep them hot (popular base-OS records).
    pub hot_fraction: f64,
    /// Decompression CPU cost.
    pub decompress_ns_per_byte: f64,
    /// Records the ARC keeps *decompressed*; re-touching an evicted record
    /// pays decompression again (why 128 KiB records lose to 64 KiB ones
    /// under 64 KiB cluster requests).
    pub decompressed_cache_records: usize,
}

/// A cVolume backend described by a *measured* physical layout instead of
/// the statistical knobs of [`DedupVolumeParams`]: every record's logical
/// and physical placement comes straight from a real
/// [`ZPool::file_layout`], so the simulated head movement is exactly what
/// the pool's allocation (and any reverse-dedup relocation) produced. This
/// is how the chunking experiment prices forward- vs reverse-dedup layouts.
#[derive(Clone, Debug)]
pub struct MeasuredVolumeParams {
    /// The booted file's records in logical order (holes absent).
    pub layout: Vec<RecordLoc>,
    /// Dedup-table entries in the pool (drives lookup cost).
    pub ddt_entries: u64,
    /// Decompression CPU cost.
    pub decompress_ns_per_byte: f64,
    /// Capacity of the decompressed-record ARC.
    pub decompressed_cache_records: usize,
}

impl MeasuredVolumeParams {
    /// Measure file `name` in `pool`. `None` if the file does not exist.
    pub fn from_pool(pool: &ZPool, name: &str) -> Option<Self> {
        Some(MeasuredVolumeParams {
            layout: pool.file_layout(name)?,
            ddt_entries: pool.stats().unique_blocks,
            decompress_ns_per_byte: pool.config().codec.decompress_ns_per_byte(),
            decompressed_cache_records: 2048,
        })
    }
}

/// Storage backend behind the CoW image during boot.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// Warmed VMI cache as a compact plain file on the local file system.
    WarmCacheXfs,
    /// CoW directly over the full VMI on the local file system: the boot
    /// working set is scattered across `image_bytes`.
    BaseImageXfs { image_bytes: u64 },
    /// Cold cache: misses cross the network to the storage nodes (which
    /// read their own disks) and are written back to the local cache.
    ColdCache { net_mbps: f64, image_bytes: u64 },
    /// Warmed cache inside a dedup+compressed cVolume.
    DedupVolume(DedupVolumeParams),
}

/// Outcome of one simulated boot.
#[derive(Clone, Copy, Debug, Default)]
pub struct BootReport {
    pub total_seconds: f64,
    pub io_seconds: f64,
    pub disk_reads: u64,
    pub disk_bytes: u64,
    pub net_bytes: u64,
    pub ddt_lookups: u64,
    pub decompressed_bytes: u64,
}

impl BootReport {
    /// Event-scheduler pricing of this boot: the total latency as integral
    /// milliseconds (rounded). Discrete-event drivers aggregate in this
    /// unit so their reports stay `Eq`-comparable across runs.
    pub fn total_millis(&self) -> u64 {
        (self.total_seconds * 1000.0).round() as u64
    }
}

/// The simulator: device models plus the cluster-granular request chain.
#[derive(Clone, Copy, Debug, Default)]
pub struct BootSim {
    pub disk: DiskModel,
    pub cpu: CpuModel,
}

impl BootSim {
    pub fn new() -> Self {
        Self::default()
    }

    /// Boot several VMs concurrently on one node against the same backend
    /// kind. CPU-side boot work overlaps freely across VMs (the nodes have
    /// eight cores), but the disk serializes: each VM's completion time
    /// includes the device time of the I/O that queued ahead of it
    /// (approximated as half of every peer's device time, the average
    /// interleaving position).
    pub fn boot_concurrent(&self, traces: &[BootTrace], backend: &Backend) -> Vec<BootReport> {
        let solo: Vec<BootReport> = traces.iter().map(|t| self.boot(t, backend)).collect();
        self.queue_adjust(solo)
    }

    /// Parallel [`boot_concurrent`](Self::boot_concurrent): the per-VM trace
    /// replays fan out over up to `threads` scoped workers (0 = all cores).
    /// `boot` is pure and the queueing adjustment runs over the in-order
    /// solo reports, so the result is bit-identical to the serial variant at
    /// any thread count.
    pub fn boot_concurrent_par(
        &self,
        traces: &[BootTrace],
        backend: &Backend,
        threads: usize,
    ) -> Vec<BootReport> {
        let solo = squirrel_hash::par::parallel_map(traces, threads, |_i, t| {
            self.boot(t, backend)
        });
        self.queue_adjust(solo)
    }

    /// [`boot_concurrent_par`](Self::boot_concurrent_par) on a persistent
    /// [`WorkerPool`](squirrel_hash::par::WorkerPool): identical reports,
    /// but the trace replays reuse already-spawned workers — the boot-storm
    /// loop calls this once per wave, so the spawn cost would otherwise
    /// recur per wave.
    pub fn boot_concurrent_on(
        &self,
        traces: &[BootTrace],
        backend: &Backend,
        workers: &squirrel_hash::par::WorkerPool,
    ) -> Vec<BootReport> {
        let solo = workers.parallel_map(traces, |_i, t| self.boot(t, backend));
        self.queue_adjust(solo)
    }

    /// Charge each boot the queueing delay of sharing the device with the
    /// others: half of everyone else's I/O time lands on each boot (the
    /// fair-share midpoint between no interference and full serialization).
    fn queue_adjust(&self, solo: Vec<BootReport>) -> Vec<BootReport> {
        let total_io: f64 = solo.iter().map(|r| r.io_seconds).sum();
        solo.into_iter()
            .map(|mut r| {
                let queued = 0.5 * (total_io - r.io_seconds);
                r.io_seconds += queued;
                r.total_seconds = self.cpu.os_boot_seconds + r.io_seconds;
                r
            })
            .collect()
    }

    /// Replay `trace` against `backend`; returns timing and I/O accounting.
    pub fn boot(&self, trace: &BootTrace, backend: &Backend) -> BootReport {
        let mut report = BootReport::default();
        // Page cache over the *logical* cache address space: QCOW2 cluster
        // over-fetch makes later reads of the same cluster free.
        let mut page_cache = PageCache::new(QCOW2_CLUSTER);
        let mut head = 0u64; // disk head position (local disk)
        let mut zstate = DedupState::new(backend);

        for op in &trace.ops {
            let first = op.offset / QCOW2_CLUSTER;
            let last = (op.offset + op.len.max(1) as u64 - 1) / QCOW2_CLUSTER;
            for cluster in first..=last {
                let coff = cluster * QCOW2_CLUSTER;
                if page_cache.contains(coff, QCOW2_CLUSTER) {
                    continue;
                }
                self.read_cluster(backend, coff, &mut head, &mut zstate, &mut report);
                page_cache.insert(coff, QCOW2_CLUSTER);
            }
        }

        report.total_seconds = self.cpu.os_boot_seconds + report.io_seconds;
        report
    }

    fn read_cluster(
        &self,
        backend: &Backend,
        coff: u64,
        head: &mut u64,
        zstate: &mut DedupState,
        report: &mut BootReport,
    ) {
        match backend {
            Backend::WarmCacheXfs => {
                // Compact file: physical offset == logical offset.
                report.io_seconds += self.disk.read_seconds(*head, coff, QCOW2_CLUSTER);
                *head = coff + QCOW2_CLUSTER;
                report.disk_reads += 1;
                report.disk_bytes += QCOW2_CLUSTER;
            }
            Backend::BaseImageXfs { image_bytes } => {
                let phys = spread_offset(coff, *image_bytes);
                report.io_seconds += self.disk.read_seconds(*head, phys, QCOW2_CLUSTER);
                *head = phys + QCOW2_CLUSTER;
                report.disk_reads += 1;
                report.disk_bytes += QCOW2_CLUSTER;
            }
            Backend::ColdCache { net_mbps, image_bytes } => {
                // Storage-node disk read (its own head; approximate with the
                // same model), plus network transfer, plus local write-back
                // (sequential, overlapped with the next fetch: half cost).
                let phys = spread_offset(coff, *image_bytes);
                report.io_seconds += self.disk.read_seconds(*head, phys, QCOW2_CLUSTER);
                *head = phys + QCOW2_CLUSTER;
                report.io_seconds += QCOW2_CLUSTER as f64 / (net_mbps * 1e6);
                report.io_seconds += 0.5 * QCOW2_CLUSTER as f64 / (self.disk.seq_mbps * 1e6);
                report.disk_reads += 1;
                report.disk_bytes += QCOW2_CLUSTER;
                report.net_bytes += QCOW2_CLUSTER;
            }
            Backend::DedupVolume(p) => {
                let first = coff / p.record_size;
                let last = (coff + QCOW2_CLUSTER - 1) / p.record_size;
                for rec in first..=last {
                    self.read_record(p, rec, head, zstate, report);
                }
            }
        }
    }

    fn read_record(
        &self,
        p: &DedupVolumeParams,
        rec: u64,
        head: &mut u64,
        z: &mut DedupState,
        report: &mut BootReport,
    ) {
        report.ddt_lookups += 1;
        report.io_seconds += self.cpu.ddt_lookup_seconds(p.ddt_entries);

        if z.decompressed_lru_touch(rec) {
            return; // decompressed and resident: free
        }

        let psize = (p.record_size as f64 * p.compressed_fraction).max(1.0) as u64;
        if !z.raw_resident.contains(rec * p.record_size, 1) {
            // Needs the device (or ARC). Shared records live wherever their
            // first writer put them; hot shared records are ARC-resident.
            let shared = coin(rec, 0x5a5a) < p.shared_fraction;
            let hot = coin(rec, 0xa0a0) < p.hot_fraction;
            if !(shared && hot) {
                let phys = if shared {
                    // Scattered: anywhere in the pool.
                    mix(rec, 0x11) % p.pool_physical_bytes.max(1)
                } else {
                    // Written at registration in one run: compact region.
                    rec * psize
                };
                report.io_seconds += self.disk.read_seconds(*head, phys, psize);
                *head = phys + psize;
                report.disk_reads += 1;
                report.disk_bytes += psize;
            }
            z.raw_resident.insert(rec * p.record_size, p.record_size);
        }

        // Decompress the whole record to serve any part of it. Records no
        // larger than the cluster enter the decompressed ARC and later
        // requests hit it; records *larger* than the QCOW2 cluster are
        // re-decompressed per request (the DMU hands out request-sized
        // buffers, the paper's explanation for 128 KiB losing to 64 KiB).
        report.io_seconds += p.record_size as f64 * p.decompress_ns_per_byte / 1e9;
        report.decompressed_bytes += p.record_size;
        if p.record_size <= QCOW2_CLUSTER {
            z.decompressed_lru_insert(rec);
        }
    }

    /// Replay `trace` against a cVolume whose physical layout was *measured*
    /// from a real pool ([`MeasuredVolumeParams`]). Unlike
    /// [`Backend::DedupVolume`], which prices scatter statistically, every
    /// seek here is the actual head move between the allocator-assigned
    /// extents, so a reverse-dedup relocation shows up directly as fewer,
    /// shorter seeks. Clusters with no overlapping record are holes and cost
    /// nothing.
    pub fn boot_measured(&self, trace: &BootTrace, p: &MeasuredVolumeParams) -> BootReport {
        let mut report = BootReport::default();
        let mut page_cache = PageCache::new(QCOW2_CLUSTER);
        let mut head = 0u64;
        // Raw (compressed) records resident in the page cache, by index into
        // the layout — records are variable-sized, so a byte-granular
        // PageCache over physical space would alias neighbours.
        let mut raw_resident: std::collections::HashSet<usize> = Default::default();
        let mut lru: std::collections::VecDeque<usize> = Default::default();
        let mut lru_set: std::collections::HashSet<usize> = Default::default();
        let lru_cap = p.decompressed_cache_records.max(1);

        for op in &trace.ops {
            let first = op.offset / QCOW2_CLUSTER;
            let last = (op.offset + op.len.max(1) as u64 - 1) / QCOW2_CLUSTER;
            for cluster in first..=last {
                let coff = cluster * QCOW2_CLUSTER;
                if page_cache.contains(coff, QCOW2_CLUSTER) {
                    continue;
                }
                let cend = coff + QCOW2_CLUSTER;
                // Records overlapping [coff, cend); layout is sorted by
                // logical offset and records never overlap each other.
                let mut i = p
                    .layout
                    .partition_point(|r| r.logical_off + r.llen as u64 <= coff);
                while i < p.layout.len() && p.layout[i].logical_off < cend {
                    let rec = &p.layout[i];
                    report.ddt_lookups += 1;
                    report.io_seconds += self.cpu.ddt_lookup_seconds(p.ddt_entries);
                    if !lru_set.contains(&i) {
                        if raw_resident.insert(i) {
                            report.io_seconds +=
                                self.disk.read_seconds(head, rec.phys, rec.psize as u64);
                            head = rec.phys + rec.psize as u64;
                            report.disk_reads += 1;
                            report.disk_bytes += rec.psize as u64;
                        }
                        // Decompress the whole record to serve any part of
                        // it; same ARC admission rule as `read_record`.
                        report.io_seconds +=
                            rec.llen as f64 * p.decompress_ns_per_byte / 1e9;
                        report.decompressed_bytes += rec.llen as u64;
                        if (rec.llen as u64) <= QCOW2_CLUSTER && lru_set.insert(i) {
                            lru.push_back(i);
                            if lru.len() > lru_cap {
                                if let Some(old) = lru.pop_front() {
                                    lru_set.remove(&old);
                                }
                            }
                        }
                    }
                    i += 1;
                }
                page_cache.insert(coff, QCOW2_CLUSTER);
            }
        }

        report.total_seconds = self.cpu.os_boot_seconds + report.io_seconds;
        report
    }
}

/// Spread a compact working-set offset across a large image: 128 KiB extents
/// stay sequential (files), extents land pseudo-randomly (file-system
/// layout).
fn spread_offset(coff: u64, image_bytes: u64) -> u64 {
    const EXTENT: u64 = 128 * 1024;
    let extent = coff / EXTENT;
    let within = coff % EXTENT;
    let base = mix(extent, 0x77) % image_bytes.max(EXTENT);
    (base / EXTENT) * EXTENT + within
}

#[inline]
fn mix(x: u64, salt: u64) -> u64 {
    let mut v = x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt.rotate_left(31);
    v ^= v >> 30;
    v = v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v ^= v >> 27;
    v = v.wrapping_mul(0x94d0_49bb_1331_11eb);
    v ^ (v >> 31)
}

/// Uniform [0,1) coin per (value, salt).
#[inline]
fn coin(x: u64, salt: u64) -> f64 {
    (mix(x, salt) >> 11) as f64 / (1u64 << 53) as f64
}

/// Mutable per-boot dedup-backend state.
struct DedupState {
    /// Raw (compressed) records resident in the page cache.
    raw_resident: PageCache,
    /// LRU of decompressed records in the ARC.
    lru: std::collections::VecDeque<u64>,
    lru_set: std::collections::HashSet<u64>,
    lru_cap: usize,
}

impl DedupState {
    fn new(backend: &Backend) -> Self {
        let (granule, cap) = match backend {
            Backend::DedupVolume(p) => (p.record_size, p.decompressed_cache_records),
            _ => (QCOW2_CLUSTER, 1),
        };
        DedupState {
            raw_resident: PageCache::new(granule.next_power_of_two()),
            lru: Default::default(),
            lru_set: Default::default(),
            lru_cap: cap.max(1),
        }
    }

    fn decompressed_lru_touch(&mut self, rec: u64) -> bool {
        self.lru_set.contains(&rec)
    }

    fn decompressed_lru_insert(&mut self, rec: u64) {
        if self.lru_set.insert(rec) {
            self.lru.push_back(rec);
            if self.lru.len() > self.lru_cap {
                if let Some(old) = self.lru.pop_front() {
                    self.lru_set.remove(&old);
                }
            }
        }
    }
}

/// Reasonable defaults for [`DedupVolumeParams`] given a record size and
/// corpus-level measurements; the experiment harness fills the measured
/// fields from real pool statistics.
impl DedupVolumeParams {
    pub fn new(record_size: u64) -> Self {
        DedupVolumeParams {
            record_size,
            compressed_fraction: 0.42,
            ddt_entries: 600_000,
            pool_physical_bytes: 10 << 30,
            shared_fraction: 0.65,
            hot_fraction: 0.93,
            decompress_ns_per_byte: 12.0,
            decompressed_cache_records: 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squirrel_dataset::ReadOp;

    /// A paper-scale boot working set: 132 MiB covered by 16 KiB reads in
    /// extent-shuffled order (mirrors `BootTrace::generate`'s shape).
    fn trace(ws: u64) -> BootTrace {
        let mut ops = Vec::new();
        let extent = 128 * 1024u64;
        let n = ws / extent;
        // Deterministic shuffle of extents.
        let mut order: Vec<u64> = (0..n).collect();
        for i in (1..order.len()).rev() {
            let j = (mix(i as u64, 0x99) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for e in order {
            let mut off = e * extent;
            while off < (e + 1) * extent {
                ops.push(ReadOp { offset: off, len: 16 * 1024 });
                off += 16 * 1024;
            }
        }
        BootTrace { ops }
    }

    const WS: u64 = 132 << 20;

    fn boot(backend: Backend) -> BootReport {
        BootSim::new().boot(&trace(WS), &backend)
    }

    fn params(bs: u64) -> DedupVolumeParams {
        // Shared fraction and DDT entries vary with record size like the
        // measured cache curves: more sharing and more entries at small
        // records.
        let blocks_per_64k = (65536 / bs).max(1) as f64;
        DedupVolumeParams {
            record_size: bs,
            compressed_fraction: 0.40 + 0.10 * (bs as f64 / 131_072.0),
            ddt_entries: (600_000.0 * blocks_per_64k) as u64,
            shared_fraction: (0.60 + 0.05 * blocks_per_64k.log2()).min(0.88),
            ..DedupVolumeParams::new(bs)
        }
    }

    #[test]
    fn baseline_boots_under_half_minute() {
        let r = boot(Backend::BaseImageXfs { image_bytes: 27 << 30 });
        assert!(r.total_seconds > 15.0 && r.total_seconds < 30.0, "{}", r.total_seconds);
    }

    #[test]
    fn warm_cache_beats_baseline() {
        // The paper's ~16% speedup of warm caches over local VMIs.
        let warm = boot(Backend::WarmCacheXfs);
        let base = boot(Backend::BaseImageXfs { image_bytes: 27 << 30 });
        assert!(
            warm.total_seconds < 0.95 * base.total_seconds,
            "warm {} vs base {}",
            warm.total_seconds,
            base.total_seconds
        );
    }

    #[test]
    fn cold_cache_slowest() {
        let cold = boot(Backend::ColdCache { net_mbps: 125.0, image_bytes: 27 << 30 });
        let base = boot(Backend::BaseImageXfs { image_bytes: 27 << 30 });
        assert!(cold.total_seconds > base.total_seconds);
        assert!(cold.net_bytes >= WS, "cold boot transfers the working set");
    }

    #[test]
    fn warm_zfs_64k_competitive_with_plain_cache() {
        let z = boot(Backend::DedupVolume(params(64 * 1024)));
        let base = boot(Backend::BaseImageXfs { image_bytes: 27 << 30 });
        assert!(
            z.total_seconds < base.total_seconds,
            "zfs-64k {} vs baseline {}",
            z.total_seconds,
            base.total_seconds
        );
    }

    #[test]
    fn tiny_records_boot_much_slower() {
        let z1k = boot(Backend::DedupVolume(params(1024)));
        let z64k = boot(Backend::DedupVolume(params(64 * 1024)));
        assert!(
            z1k.total_seconds > 1.5 * z64k.total_seconds,
            "1k {} vs 64k {}",
            z1k.total_seconds,
            z64k.total_seconds
        );
    }

    #[test]
    fn record_larger_than_cluster_is_slower() {
        let z128 = boot(Backend::DedupVolume(params(128 * 1024)));
        let z64 = boot(Backend::DedupVolume(params(64 * 1024)));
        assert!(
            z128.total_seconds > z64.total_seconds,
            "128k {} vs 64k {}",
            z128.total_seconds,
            z64.total_seconds
        );
    }

    #[test]
    fn concurrent_boots_contend_on_the_disk() {
        let sim = BootSim::new();
        let traces: Vec<BootTrace> = (0..4).map(|_| trace(WS)).collect();
        let solo = sim.boot(&traces[0], &Backend::WarmCacheXfs);
        let together = sim.boot_concurrent(&traces, &Backend::WarmCacheXfs);
        assert_eq!(together.len(), 4);
        for r in &together {
            assert!(
                r.total_seconds > solo.total_seconds,
                "{} vs {}",
                r.total_seconds,
                solo.total_seconds
            );
            // But far less than 4x serialized boots: CPU work overlaps.
            assert!(r.total_seconds < 4.0 * solo.total_seconds);
        }
    }

    #[test]
    fn concurrent_boot_par_bit_identical_at_any_thread_count() {
        let sim = BootSim::new();
        let traces: Vec<_> = (0..6).map(|i| trace(WS + i * 4096)).collect();
        let serial = sim.boot_concurrent(&traces, &Backend::WarmCacheXfs);
        for threads in [1usize, 2, 8] {
            let par = sim.boot_concurrent_par(&traces, &Backend::WarmCacheXfs, threads);
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(
                    p.total_seconds.to_bits(),
                    s.total_seconds.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(p.io_seconds.to_bits(), s.io_seconds.to_bits());
                assert_eq!(p.disk_reads, s.disk_reads);
                assert_eq!(p.disk_bytes, s.disk_bytes);
                assert_eq!(p.net_bytes, s.net_bytes);
                assert_eq!(p.ddt_lookups, s.ddt_lookups);
                assert_eq!(p.decompressed_bytes, s.decompressed_bytes);
            }
        }
    }

    #[test]
    fn concurrent_boot_of_one_equals_solo() {
        let sim = BootSim::new();
        let t = trace(WS);
        let solo = sim.boot(&t, &Backend::WarmCacheXfs);
        let one = sim.boot_concurrent(std::slice::from_ref(&t), &Backend::WarmCacheXfs);
        assert!((one[0].total_seconds - solo.total_seconds).abs() < 1e-9);
    }

    #[test]
    fn page_cache_makes_repeat_reads_free() {
        // Re-reading the same offsets must add no I/O time.
        let mut t = trace(WS);
        let doubled: Vec<_> = t.ops.iter().chain(t.ops.iter()).copied().collect();
        t.ops = doubled;
        let once = boot(Backend::WarmCacheXfs);
        let twice = BootSim::new().boot(&t, &Backend::WarmCacheXfs);
        assert!((once.total_seconds - twice.total_seconds).abs() < 1e-6);
    }

    #[test]
    fn reports_are_deterministic() {
        let a = boot(Backend::DedupVolume(params(8192)));
        let b = boot(Backend::DedupVolume(params(8192)));
        assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
    }

    /// An interleaved two-file pool: file "b"'s records alternate with
    /// "a"'s on disk, so "b" is maximally fragmented until a reverse pass.
    fn interleaved_pool(bs: usize, n: u64) -> squirrel_zfs::ZPool {
        use squirrel_compress::Codec;
        let mut p = squirrel_zfs::ZPool::new(squirrel_zfs::PoolConfig::new(bs, Codec::Off));
        p.create_file("a");
        p.create_file("b");
        for i in 0..n {
            p.write_block("a", i, &vec![(i + 1) as u8; bs]);
            p.write_block("b", i, &vec![(i + 101) as u8; bs]);
        }
        p
    }

    /// Sequential cluster-sized reads over the first `bytes` of the image.
    fn seq_trace(bytes: u64) -> BootTrace {
        let ops = (0..bytes / QCOW2_CLUSTER)
            .map(|c| ReadOp { offset: c * QCOW2_CLUSTER, len: QCOW2_CLUSTER as u32 })
            .collect();
        BootTrace { ops }
    }

    #[test]
    fn measured_reverse_layout_boots_faster_than_scattered() {
        let (bs, n) = (4096usize, 64u64);
        let mut pool = interleaved_pool(bs, n);
        // Tight contiguity threshold so record-sized gaps cost real seeks.
        let sim = BootSim {
            disk: DiskModel { contiguous_bytes: 1024, ..Default::default() },
            cpu: CpuModel::default(),
        };
        let t = seq_trace(n * bs as u64);

        let before = MeasuredVolumeParams::from_pool(&pool, "b").expect("file");
        let scattered = sim.boot_measured(&t, &before);
        let rep = pool.reverse_dedup_pass("b").expect("file");
        assert!(rep.extents_after < rep.extents_before, "{rep:?}");
        let after = MeasuredVolumeParams::from_pool(&pool, "b").expect("file");
        let sequential = sim.boot_measured(&t, &after);

        // Same records, same bytes — only the head movement changed.
        assert_eq!(scattered.disk_bytes, sequential.disk_bytes);
        assert_eq!(scattered.ddt_lookups, sequential.ddt_lookups);
        assert_eq!(scattered.decompressed_bytes, sequential.decompressed_bytes);
        assert!(
            sequential.io_seconds < 0.5 * scattered.io_seconds,
            "sequential {} vs scattered {}",
            sequential.io_seconds,
            scattered.io_seconds
        );
    }

    #[test]
    fn measured_boot_skips_holes() {
        use squirrel_compress::Codec;
        let bs = 4096usize;
        let mut p = squirrel_zfs::ZPool::new(squirrel_zfs::PoolConfig::new(bs, Codec::Off));
        p.create_file("s");
        p.write_block("s", 40, &vec![9u8; bs]); // lands in cluster 2
        let params = MeasuredVolumeParams::from_pool(&p, "s").expect("file");

        let hole = BootTrace { ops: vec![ReadOp { offset: 0, len: 4096 }] };
        let r = BootSim::new().boot_measured(&hole, &params);
        assert_eq!(r.disk_reads, 0);
        assert_eq!(r.ddt_lookups, 0);
        assert_eq!(r.io_seconds, 0.0, "holes cost nothing");

        let data = BootTrace { ops: vec![ReadOp { offset: 40 * bs as u64, len: 4096 }] };
        let r2 = BootSim::new().boot_measured(&data, &params);
        assert_eq!(r2.disk_reads, 1);
        assert!(r2.io_seconds > 0.0);
    }

    #[test]
    fn measured_boot_is_deterministic_and_accounts_cdc_record_sizes() {
        use squirrel_compress::Codec;
        use squirrel_zfs::{CdcParams, ChunkStrategy};
        let bs = 4096usize;
        let mut p = squirrel_zfs::ZPool::new(
            squirrel_zfs::PoolConfig::new(bs, Codec::Lzjb)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(4096))),
        );
        let blocks: Vec<Vec<u8>> = (0..32)
            .map(|i| (0..bs).map(|j| ((i * 131 + j * 7) % 251) as u8 | 1).collect())
            .collect();
        p.import_file_parallel("img", &blocks, 32 * bs as u64);
        let params = MeasuredVolumeParams::from_pool(&p, "img").expect("file");
        let t = seq_trace(32 * bs as u64);

        let a = BootSim::new().boot_measured(&t, &params);
        let b = BootSim::new().boot_measured(&t, &params);
        assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
        assert_eq!(a.disk_reads, b.disk_reads);

        // Every variable-size record is fetched and decompressed exactly
        // once: raw residency stops re-reads, the ARC stops re-decompression.
        let total_llen: u64 = params.layout.iter().map(|r| r.llen as u64).sum();
        let total_psize: u64 = params.layout.iter().map(|r| r.psize as u64).sum();
        assert_eq!(a.decompressed_bytes, total_llen);
        assert_eq!(a.disk_bytes, total_psize);
        // Records straddling a cluster boundary are looked up once per
        // touching cluster, so lookups can exceed the record count.
        assert!(a.ddt_lookups as usize >= params.layout.len());
    }

    #[test]
    fn boot_time_curve_has_paper_shape() {
        // Figure 11's qualitative curve: steep at 1–4 KiB, minimum around
        // 32–64 KiB, uptick at 128 KiB.
        let times: Vec<f64> = [1024u64, 2048, 4096, 8192, 16384, 32768, 65536, 131072]
            .iter()
            .map(|&bs| boot(Backend::DedupVolume(params(bs))).total_seconds)
            .collect();
        let min_idx = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("nonempty")
            .0;
        assert!(
            (5..=6).contains(&min_idx),
            "minimum at 32–64 KiB, got index {min_idx}: {times:?}"
        );
        assert!(times[0] > times[6], "1 KiB slowest end: {times:?}");
    }
}
