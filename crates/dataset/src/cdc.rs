//! Content-defined chunking (CDC): the variable-size alternative to fixed
//! blocks.
//!
//! The paper justifies using ZFS (fixed-size records) by citing Jin &
//! Miller's finding that fixed-size chunking deduplicates VM images about
//! as well as variable-size chunking. This module lets the reproduction
//! *test* that claim on its corpus.
//!
//! The chunker itself — Gear rolling hash, parameters, boundary scan —
//! lives in [`squirrel_hash::cdc`], the same implementation `squirrel_zfs`
//! pools use when configured with `ChunkStrategy::Cdc`. This module only
//! adapts corpus caches onto that shared code (via the shared
//! [`ChunkLedger`] accounting), so the dataset-level dedup sweeps and the
//! pool's ingest path cannot drift apart.

use crate::corpus::Corpus;
pub use squirrel_hash::cdc::{
    chunk_boundaries, CdcParams, ChunkLedger, ChunkStrategy, ChunkingStats,
};

/// Deduplicate the corpus' caches under `strategy` using the shared ledger.
///
/// This is the single accounting path both [`cdc_dedup_caches`] and
/// [`fixed_dedup_caches`] reduce to.
pub fn dedup_caches(corpus: &Corpus, strategy: ChunkStrategy) -> ChunkingStats {
    let mut ledger = ChunkLedger::new();
    match strategy {
        ChunkStrategy::Fixed(bs) => {
            for img in corpus.iter() {
                for block in img.cache().blocks_trimmed(bs) {
                    if block.is_empty() {
                        continue;
                    }
                    ledger.add_chunk(&block);
                }
            }
        }
        ChunkStrategy::Cdc(params) => {
            for img in corpus.iter() {
                let cache = img.cache();
                let mut data = vec![0u8; cache.bytes() as usize];
                img.read_at(0, &mut data);
                for (s, e) in chunk_boundaries(&data, &params) {
                    ledger.add_chunk(&data[s..e]);
                }
            }
        }
    }
    ledger.finish()
}

/// Deduplicate the corpus' caches under CDC with the given parameters.
///
/// The gear table is seeded from the corpus seed, so boundaries are a pure
/// function of (corpus, parameters).
pub fn cdc_dedup_caches(corpus: &Corpus, params: &CdcParams) -> ChunkingStats {
    let params = params.with_gear_seed(corpus.config().seed);
    dedup_caches(corpus, ChunkStrategy::Cdc(params))
}

/// Deduplicate the corpus' caches under fixed-size blocks of `bs` (same
/// accounting as [`cdc_dedup_caches`], for apples-to-apples comparison).
pub fn fixed_dedup_caches(corpus: &Corpus, bs: usize) -> ChunkingStats {
    dedup_caches(corpus, ChunkStrategy::Fixed(bs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::test_corpus(12, 55))
    }

    #[test]
    fn boundaries_cover_input_exactly() {
        let c = corpus();
        let img = c.image(0);
        let mut data = vec![0u8; img.cache().bytes() as usize];
        img.read_at(0, &mut data);
        let params = CdcParams::with_average(4096).with_gear_seed(1);
        let cuts = chunk_boundaries(&data, &params);
        assert_eq!(cuts.first().expect("nonempty").0, 0);
        assert_eq!(cuts.last().expect("nonempty").1, data.len());
        for w in cuts.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
    }

    #[test]
    fn chunk_sizes_respect_bounds_and_average() {
        let c = corpus();
        let img = c.image(1);
        let mut data = vec![0u8; img.cache().bytes() as usize];
        img.read_at(0, &mut data);
        let params = CdcParams::with_average(4096).with_gear_seed(1);
        let cuts = chunk_boundaries(&data, &params);
        for &(s, e) in &cuts[..cuts.len() - 1] {
            let n = e - s;
            assert!(n >= params.min_size, "chunk {n}");
            assert!(n <= params.max_size, "chunk {n}");
        }
        let mean = data.len() as f64 / cuts.len() as f64;
        assert!(
            (1024.0..16384.0).contains(&mean),
            "mean chunk {mean} should be near the 4 KiB target"
        );
    }

    #[test]
    fn boundaries_survive_prefix_insertion() {
        // The CDC selling point: shifting content re-synchronizes.
        use squirrel_hash::ContentHash;
        let params = CdcParams::with_average(2048).with_gear_seed(9);
        let c = corpus();
        let img = c.image(2);
        let mut data = vec![0u8; img.cache().bytes() as usize];
        img.read_at(0, &mut data);
        let mut shifted = vec![0xEEu8; 37];
        shifted.extend_from_slice(&data);
        let a: std::collections::HashSet<u128> = chunk_boundaries(&data, &params)
            .iter()
            .map(|&(s, e)| ContentHash::of(&data[s..e]).short())
            .collect();
        let b: std::collections::HashSet<u128> = chunk_boundaries(&shifted, &params)
            .iter()
            .map(|&(s, e)| ContentHash::of(&shifted[s..e]).short())
            .collect();
        let common = a.intersection(&b).count();
        assert!(
            common * 2 > a.len(),
            "most chunks must survive a 37-byte prefix shift: {common}/{}",
            a.len()
        );
    }

    #[test]
    fn fixed_and_cdc_dedup_are_comparable_on_caches() {
        // Jin & Miller's finding, the paper's justification for ZFS: on VM
        // content, fixed-size chunking dedups about as well as CDC.
        let c = corpus();
        let fixed = fixed_dedup_caches(&c, 4096);
        let cdc = cdc_dedup_caches(&c, &CdcParams::with_average(4096));
        assert!(fixed.dedup_ratio() > 1.2, "{}", fixed.dedup_ratio());
        assert!(cdc.dedup_ratio() > 1.2, "{}", cdc.dedup_ratio());
        let rel = fixed.dedup_ratio() / cdc.dedup_ratio();
        assert!(
            (0.55..=1.8).contains(&rel),
            "fixed {} vs cdc {} should be the same ballpark",
            fixed.dedup_ratio(),
            cdc.dedup_ratio()
        );
    }

    #[test]
    fn stats_totals_consistent() {
        let c = corpus();
        let s = fixed_dedup_caches(&c, 8192);
        assert!(s.unique_chunks <= s.total_chunks);
        assert!(s.unique_bytes <= s.total_bytes);
        assert!(s.mean_chunk_bytes > 0.0);
    }

    #[test]
    fn cdc_gear_seed_follows_corpus_seed() {
        // Two corpora with different seeds chunk under different gear
        // tables but the accounting stays self-consistent.
        let c = corpus();
        let s = cdc_dedup_caches(&c, &CdcParams::with_average(4096));
        assert!(s.unique_chunks <= s.total_chunks);
        assert!(s.dedup_ratio() >= 1.0);
    }
}
