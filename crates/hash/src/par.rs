//! Minimal std-only parallelism substrate (`std::thread` only; no external
//! thread crates, per the workspace dependency policy).
//!
//! Three shapes cover every parallel stage in the workspace:
//!
//! * [`WorkerPool`] — a **persistent** pool of workers spawned lazily on
//!   first use and reused across stages and calls. This is the ingest /
//!   boot-storm hot-path shape: a `ZPool` or `Squirrel` owns one pool for
//!   its lifetime, so no parallel stage ever pays thread-creation cost
//!   after the first.
//! * [`run_workers`] — fixed worker count on one-shot scoped threads, each
//!   worker owning a round-robin slice of the input (the corpus-analysis
//!   shape, where a single long batch amortizes the spawn).
//! * [`parallel_map`] / [`parallel_map_indices`] — dynamic work-stealing
//!   over a slice via an atomic cursor, results returned **in input order**.
//!   The free-function variants spawn scoped threads per call; the
//!   [`WorkerPool`] methods of the same names reuse the persistent workers.
//!
//! Output order is independent of scheduling in every shape, which is what
//! lets callers promise bit-identical results at any thread count.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Resolve a `threads` knob: `0` means all available parallelism. The OS
/// query is memoized process-wide, so resolving on a hot path never
/// re-enters the kernel.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        static CORES: OnceLock<usize> = OnceLock::new();
        *CORES.get_or_init(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    } else {
        threads
    }
}

/// Run `n_workers` copies of `work` (each told its worker index) on scoped
/// threads and collect their results in worker order. With one worker the
/// closure runs on the calling thread.
pub fn run_workers<R, F>(n_workers: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = n_workers.max(1);
    if n == 1 {
        return vec![work(0)];
    }
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..n).map(|w| scope.spawn(move || work(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Batch size pulled from the shared cursor per grab; amortizes contention
/// while keeping the tail balanced.
const GRAB: usize = 16;

/// Workers that `count` items can actually keep busy: one per cursor grab,
/// capped at `max`. Tiny batches (sparse register diffs) thus run serially
/// or on a couple of workers instead of paying wake/steal overhead for
/// workers that would find the cursor already drained.
fn useful_workers(count: usize, max: usize) -> usize {
    max.min(count.div_ceil(GRAB)).max(1)
}

/// Apply `f` to every item of `items` across up to `threads` scoped workers
/// (0 = all cores), returning results in input order regardless of how the
/// work was scheduled.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_indices(items.len(), threads, |i| f(i, &items[i]))
}

/// Apply `f` to every index in `0..count` across up to `threads` scoped
/// workers (0 = all cores), results in index order. The index-space variant
/// of [`parallel_map`] for callers whose work items are *generated* — e.g.
/// the M VMs of a boot storm — rather than stored in a slice.
pub fn parallel_map_indices<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = useful_workers(count, resolve_threads(threads));
    if n <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let parts = run_workers(n, |_w| {
        let mut out: Vec<(usize, R)> = Vec::new();
        loop {
            let start = cursor.fetch_add(GRAB, Ordering::Relaxed);
            if start >= count {
                break;
            }
            for i in start..(start + GRAB).min(count) {
                out.push((i, f(i)));
            }
        }
        out
    });
    merge_indexed(count, parts)
}

/// Scatter `(index, result)` pairs back into input order.
fn merge_indexed<R>(count: usize, parts: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

// --- persistent worker pool --------------------------------------------------

thread_local! {
    /// Set while a thread is executing inside a pool job. A nested dispatch
    /// from a pool job runs inline instead of deadlocking on the pool's
    /// one-job-at-a-time slot.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Type-erased job pointer. The dispatcher guarantees every participating
/// worker finishes with the referent before `dispatch` returns, so sending
/// the pointer to pool threads is sound even though it borrows the caller's
/// stack.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `WorkerPool::dispatch` blocks until every participant has finished
// with it, so the pointer never outlives its referent.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Incremented per dispatched job; workers use it to detect fresh work.
    epoch: u64,
    /// Participants of the current job (worker indices `0..limit`; index 0
    /// is the dispatching caller itself).
    limit: usize,
    /// Persistent participants still running the current job.
    active: usize,
    /// Persistent workers spawned so far (they hold indices `1..=spawned`).
    spawned: usize,
    /// First panic payload observed among the persistent participants.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signals workers: new job posted, or shutdown.
    work_cv: Condvar,
    /// Signals the dispatcher: all persistent participants finished.
    done_cv: Condvar,
}

struct PoolCore {
    /// Resolved worker budget (cached once at construction; never re-queries
    /// the OS afterwards).
    target: usize,
    /// Participants actually dispatched: `target` capped at the machine's
    /// available parallelism — extra workers on an oversubscribed host only
    /// timeslice and add wake/steal overhead. Floored at 2 so a
    /// multi-thread pool still exercises real cross-thread execution (and
    /// the determinism contract) even on a single-core host.
    effective: usize,
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Serializes dispatchers: the pool runs one job at a time, so two
    /// threads sharing a cloned pool queue up instead of clobbering the
    /// job slot.
    dispatch_lock: Mutex<()>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.lock().expect("pool handles poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent, lazily-spawned worker pool.
///
/// Construction is cheap (no threads). The first dispatch that wants `k`
/// workers spawns `k - 1` persistent threads — the dispatching caller always
/// participates as worker 0, so a pool sized for `t` threads parks at most
/// `t - 1`. Later dispatches reuse them via a condvar wake, which is the
/// whole point: per-call `thread::spawn` cost, the dominant overhead of the
/// old scoped pipeline, is paid once per pool lifetime instead of once per
/// stage.
///
/// Cloning shares the pool (an `Arc` bump); the threads exit when the last
/// clone drops. Dispatches are serialized per pool (one job at a time); a
/// dispatch from inside a pool job runs inline rather than deadlocking.
/// Participants per dispatch are capped at the machine's available
/// parallelism (floored at 2, so a multi-thread pool still runs truly
/// concurrent even on a single-core host): extra workers beyond the core
/// count would only timeslice, so `threads = 8` on a 2-core box
/// dispatches 2.
/// Determinism: the `parallel_map*` methods merge results in input order
/// exactly like the free functions, so outputs are bit-identical at any
/// pool size.
#[derive(Clone)]
pub struct WorkerPool {
    core: Arc<PoolCore>,
}

impl WorkerPool {
    /// A pool that will use up to `threads` workers (`0` = all available
    /// cores, resolved and cached now). No threads are spawned until the
    /// first dispatch that needs them.
    pub fn new(threads: usize) -> Self {
        let target = resolve_threads(threads).max(1);
        WorkerPool {
            core: Arc::new(PoolCore {
                target,
                effective: target.min(resolve_threads(0).max(2)),
                inner: Arc::new(PoolInner {
                    state: Mutex::new(PoolState {
                        job: None,
                        epoch: 0,
                        limit: 0,
                        active: 0,
                        spawned: 0,
                        panic: None,
                        shutdown: false,
                    }),
                    work_cv: Condvar::new(),
                    done_cv: Condvar::new(),
                }),
                handles: Mutex::new(Vec::new()),
                dispatch_lock: Mutex::new(()),
            }),
        }
    }

    /// The pool's resolved worker budget.
    pub fn threads(&self) -> usize {
        self.core.target
    }

    /// Persistent threads currently alive (diagnostic; `0` until the first
    /// multi-worker dispatch).
    pub fn spawned_workers(&self) -> usize {
        self.core.inner.state.lock().expect("pool state poisoned").spawned
    }

    /// Run `work(w)` exactly once for every index `w` in `0..workers`,
    /// spread over up to the pool's thread budget (the caller participates).
    /// Blocks until every index has run. A panic in any participant
    /// propagates to the caller after the job has fully drained.
    pub fn run(&self, workers: usize, work: impl Fn(usize) + Sync) {
        let total = workers.max(1);
        let n = total.min(self.core.effective);
        if n <= 1 || IN_POOL_JOB.with(|flag| flag.get()) {
            for w in 0..total {
                work(w);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        self.dispatch(n, &|_p: usize| loop {
            let w = cursor.fetch_add(1, Ordering::Relaxed);
            if w >= total {
                break;
            }
            work(w);
        });
    }

    /// [`parallel_map`] on the persistent workers: apply `f` to every item,
    /// results in input order.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.parallel_map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// [`parallel_map_indices`] on the persistent workers: apply `f` to
    /// every index in `0..count`, results in index order.
    pub fn parallel_map_indices<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let n = useful_workers(count, self.core.effective);
        if n <= 1 || IN_POOL_JOB.with(|flag| flag.get()) {
            return (0..count).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let outs: Vec<Mutex<Vec<(usize, R)>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        self.dispatch(n, &|w: usize| {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let start = cursor.fetch_add(GRAB, Ordering::Relaxed);
                if start >= count {
                    break;
                }
                for i in start..(start + GRAB).min(count) {
                    local.push((i, f(i)));
                }
            }
            *outs[w].lock().expect("result slot poisoned") = local;
        });
        merge_indexed(
            count,
            outs.into_iter()
                .map(|m| m.into_inner().expect("result slot poisoned"))
                .collect(),
        )
    }

    /// Post one job for `participants >= 2` workers and run share 0 on the
    /// calling thread. Returns only after every participant is done.
    fn dispatch(&self, participants: usize, job: &(dyn Fn(usize) + Sync)) {
        debug_assert!(participants >= 2);
        let inner = &self.core.inner;
        // A panicking job unwinds through this guard and poisons the lock;
        // the pool itself stays consistent, so recover rather than refuse.
        let _turn = self
            .core
            .dispatch_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        {
            let mut st = inner.state.lock().expect("pool state poisoned");
            debug_assert!(st.job.is_none(), "pool dispatch is not reentrant");
            // Lazily grow the persistent worker set to cover indices
            // 1..participants (index 0 is the caller).
            while st.spawned < participants - 1 {
                let w = st.spawned + 1;
                let worker_inner = Arc::clone(&self.core.inner);
                let handle = std::thread::Builder::new()
                    .name(format!("squirrel-pool-{w}"))
                    .spawn(move || worker_loop(&worker_inner, w))
                    .expect("spawn pool worker");
                self.core.handles.lock().expect("pool handles poisoned").push(handle);
                st.spawned += 1;
            }
            // SAFETY: lifetime erasure only — `dispatch` does not return
            // until every participant has finished with `job` (the
            // `active == 0` wait below), so the erased borrow never
            // outlives the referent.
            let erased: &'static (dyn Fn(usize) + Sync) =
                unsafe { std::mem::transmute(job) };
            st.job = Some(Job(erased as *const _));
            st.epoch += 1;
            st.limit = participants;
            st.active = participants - 1;
            inner.work_cv.notify_all();
        }
        // The caller is participant 0. Catch its panic so the persistent
        // participants always drain before we unwind past the job's
        // borrowed environment.
        let caller = catch_unwind(AssertUnwindSafe(|| {
            IN_POOL_JOB.with(|flag| flag.set(true));
            let r = catch_unwind(AssertUnwindSafe(|| job(0)));
            IN_POOL_JOB.with(|flag| flag.set(false));
            if let Err(p) = r {
                resume_unwind(p);
            }
        }));
        let worker_panic = {
            let mut st = inner.state.lock().expect("pool state poisoned");
            while st.active > 0 {
                st = inner.done_cv.wait(st).expect("pool state poisoned");
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(p) = caller {
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.core.target)
            .field("spawned", &self.spawned_workers())
            .finish()
    }
}

/// Persistent worker body: wait for a fresh epoch, run the job if this
/// worker participates, report completion, repeat until shutdown.
fn worker_loop(inner: &PoolInner, w: usize) {
    IN_POOL_JOB.with(|flag| flag.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if w < st.limit {
                        break st.job.expect("fresh epoch carries a job");
                    }
                    // Not a participant this round; keep waiting.
                }
                st = inner.work_cv.wait(st).expect("pool state poisoned");
            }
        };
        // SAFETY: the dispatcher waits for `active == 0` before returning,
        // so the job's referent outlives this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(w) }));
        let mut st = inner.state.lock().expect("pool state poisoned");
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            inner.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        // Memoized: repeated resolution agrees with itself.
        assert_eq!(resolve_threads(0), resolve_threads(0));
    }

    #[test]
    fn run_workers_orders_by_worker() {
        assert_eq!(run_workers(4, |w| w * 10), vec![0, 10, 20, 30]);
        assert_eq!(run_workers(1, |w| w), vec![0]);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(&items, threads, |i, &x| x * 2 + i as u64);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_indices_matches_serial() {
        for threads in [1, 2, 8] {
            let out = parallel_map_indices(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map_indices(0, 8, |i| i).is_empty());
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &b| b).is_empty());
        assert_eq!(parallel_map(&[7u8], 8, |_, &b| b + 1), vec![8]);
    }

    #[test]
    fn useful_workers_clamps_to_grabs() {
        assert_eq!(useful_workers(0, 8), 1);
        assert_eq!(useful_workers(3, 8), 1, "one grab covers a tiny batch");
        assert_eq!(useful_workers(GRAB + 1, 8), 2);
        assert_eq!(useful_workers(10 * GRAB, 8), 8);
        assert_eq!(useful_workers(10 * GRAB, 2), 2);
    }

    #[test]
    fn pool_is_lazy_and_reusable() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.spawned_workers(), 0, "construction spawns nothing");
        // A tiny map stays inline: still no threads.
        assert_eq!(pool.parallel_map(&[1u8, 2], |_, &b| b * 2), vec![2, 4]);
        assert_eq!(pool.spawned_workers(), 0);
        // A real batch spawns once...
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(pool.parallel_map(&items, |_, &x| x + 1), expect);
        let spawned = pool.spawned_workers();
        assert!((1..=3).contains(&spawned), "caller is worker 0, got {spawned}");
        // ...and later batches reuse the same workers.
        for _ in 0..5 {
            assert_eq!(pool.parallel_map(&items, |_, &x| x + 1), expect);
        }
        assert_eq!(pool.spawned_workers(), spawned);
    }

    #[test]
    fn pool_matches_free_function_at_any_size() {
        let items: Vec<u64> = (0..333).collect();
        let reference = parallel_map(&items, 1, |i, &x| x * 3 + i as u64);
        for threads in [1usize, 2, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.parallel_map(&items, |i, &x| x * 3 + i as u64), reference);
            assert_eq!(
                pool.parallel_map_indices(items.len(), |i| items[i] * 3 + i as u64),
                reference
            );
        }
    }

    #[test]
    fn pool_run_covers_every_index_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(4, |w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        // Serial run (single worker) also covers index 0.
        let one = AtomicUsize::new(0);
        pool.run(1, |w| {
            assert_eq!(w, 0);
            one.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(one.load(Ordering::Relaxed), 1);
        // More indices than pool threads: every index still runs once.
        let narrow = WorkerPool::new(2);
        let wide: Vec<AtomicUsize> = (0..9).map(|_| AtomicUsize::new(0)).collect();
        narrow.run(9, |w| {
            wide[w].fetch_add(1, Ordering::Relaxed);
        });
        for h in &wide {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn pool_caps_participants_at_hardware_parallelism() {
        let pool = WorkerPool::new(64);
        assert_eq!(pool.threads(), 64, "the budget itself is as requested");
        let cap = resolve_threads(0).max(2);
        // Dispatch a big batch: spawned persistent workers never exceed
        // cap - 1 (the caller is participant 0).
        pool.parallel_map_indices(2048, |i| i);
        assert!(
            pool.spawned_workers() < cap,
            "spawned {} workers on a {cap}-wide machine",
            pool.spawned_workers()
        );
        // ...but a multi-thread pool always gets at least one real worker,
        // even on a single-core host.
        assert!(pool.spawned_workers() >= 1);
    }

    #[test]
    fn pool_clone_shares_workers() {
        let pool = WorkerPool::new(2);
        let clone = pool.clone();
        let items: Vec<u32> = (0..200).collect();
        pool.parallel_map(&items, |_, &x| x);
        let spawned = pool.spawned_workers();
        clone.parallel_map(&items, |_, &x| x);
        assert_eq!(clone.spawned_workers(), spawned, "clone reuses the same threads");
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = WorkerPool::new(4);
        let outer: Vec<u32> = (0..64).collect();
        // Each outer item runs a nested map on the same pool; the nested
        // calls must degrade to inline execution, not deadlock.
        let out = pool.parallel_map(&outer, |_, &x| {
            pool.parallel_map_indices(40, |i| i as u32).iter().sum::<u32>() + x
        });
        let nested_sum: u32 = (0..40).sum();
        assert_eq!(out, outer.iter().map(|&x| nested_sum + x).collect::<Vec<_>>());
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let pool = WorkerPool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map_indices(400, |i| {
                assert!(i != 237, "boom at {i}");
                i
            })
        }));
        assert!(r.is_err(), "panic must propagate to the dispatcher");
        // The pool survives a panicked job and keeps working.
        assert_eq!(
            pool.parallel_map_indices(100, |i| i),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = WorkerPool::new(8);
        pool.parallel_map_indices(1000, |i| i * 2);
        drop(pool); // must not hang or leak (join happens here)
    }
}
