//! The dedup table (DDT): refcounted, content-addressed block directory.
//!
//! Every unique block in the pool has exactly one entry holding its
//! compressed payload size, physical location, reference count, and (when
//! retention is on) the compressed bytes themselves. The entry count drives
//! both the in-core and on-disk DDT footprints that the paper measures in
//! Figures 9, 10 and 13.

use squirrel_hash::FnvHashMap;
use std::sync::Arc;

/// Key type: the first 128 bits of the block's SHA-256.
pub type BlockKey = u128;

/// A shared, immutable block payload. Every consumer of a block's bytes —
/// the DDT entry itself, ARC cache entries, copy-on-read cache blocks, and
/// send-stream payloads — holds a reference to the *same* buffer, so a warm
/// read or a stream build is a refcount bump, never a copy. The one copy in
/// a payload's life is its birth (`Vec` → `Arc<[u8]>` after the single
/// compress or decompress that produced it), on the cold path.
pub type SharedPayload = Arc<[u8]>;

/// One unique block's directory entry.
#[derive(Clone, Debug)]
pub struct DdtEntry {
    /// References from live file block pointers and snapshot tables.
    pub refcount: u64,
    /// Compressed (physical) size in bytes.
    pub psize: u32,
    /// Logical (uncompressed) size in bytes. Equals the pool record size
    /// for fixed chunking; variable for CDC chunks.
    pub lsize: u32,
    /// Physical byte offset on the (modelled) disk.
    pub phys: u64,
    /// Compressed payload, present when the pool retains data.
    pub data: Option<SharedPayload>,
}

/// The dedup table proper.
#[derive(Default)]
pub struct DedupTable {
    entries: FnvHashMap<BlockKey, DdtEntry>,
    /// Next physical allocation offset (append-only allocator; freed space
    /// becomes holes, like an aging pool).
    alloc_cursor: u64,
    /// Total compressed bytes currently referenced.
    physical_bytes: u64,
}

impl DedupTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unique blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total compressed bytes of all entries.
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    pub fn get(&self, key: &BlockKey) -> Option<&DdtEntry> {
        self.entries.get(key)
    }

    /// Add one reference to `key`, inserting a fresh entry (with
    /// `(psize, lsize, payload)` produced by `make`) when the block is new.
    /// Returns `true` when the block was new.
    pub fn add_ref(
        &mut self,
        key: BlockKey,
        make: impl FnOnce() -> (u32, u32, Option<SharedPayload>),
    ) -> bool {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().refcount += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let (psize, lsize, data) = make();
                let phys = self.alloc_cursor;
                self.alloc_cursor += psize as u64;
                self.physical_bytes += psize as u64;
                v.insert(DdtEntry { refcount: 1, psize, lsize, phys, data });
                true
            }
        }
    }

    /// Drop one reference; frees the entry at zero. Returns `true` when the
    /// entry was freed.
    pub fn release(&mut self, key: &BlockKey) -> bool {
        let entry = self.entries.get_mut(key).expect("release of unknown block");
        debug_assert!(entry.refcount > 0);
        entry.refcount -= 1;
        if entry.refcount == 0 {
            let psize = entry.psize as u64;
            self.entries.remove(key);
            self.physical_bytes -= psize;
            true
        } else {
            false
        }
    }

    /// Swap the stored payload of `key`, keeping `physical_bytes` accounting
    /// exact (the old psize is released, the new one charged). Refcount and
    /// physical offset are untouched. This is the primitive under both
    /// corruption injection and block repair. Returns `false` when the key
    /// is absent.
    pub fn replace_payload(
        &mut self,
        key: BlockKey,
        psize: u32,
        data: Option<SharedPayload>,
    ) -> bool {
        let Some(entry) = self.entries.get_mut(&key) else {
            return false;
        };
        self.physical_bytes = self.physical_bytes - entry.psize as u64 + psize as u64;
        entry.psize = psize;
        entry.data = data;
        true
    }

    /// Relocate `key`'s block to a fresh extent at the allocation cursor
    /// (the reverse-dedup primitive: the caller is making some file's
    /// working set physically sequential, and every other referent of the
    /// block chases the move for free because `phys` lives only here).
    /// Physical accounting is unchanged — the old extent becomes a hole,
    /// like any freed space under the append-only allocator. Returns
    /// `(old_phys, psize)`, or `None` when the key is absent.
    pub fn reassign_phys(&mut self, key: &BlockKey) -> Option<(u64, u32)> {
        let entry = self.entries.get_mut(key)?;
        let old = entry.phys;
        entry.phys = self.alloc_cursor;
        self.alloc_cursor += entry.psize as u64;
        Some((old, entry.psize))
    }

    /// Sum of all refcounts (diagnostic; equals the number of live block
    /// pointers across files and snapshots).
    pub fn total_refs(&self) -> u64 {
        self.entries.values().map(|e| e.refcount).sum()
    }

    /// Iterate `(key, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockKey, &DdtEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u32) -> impl FnOnce() -> (u32, u32, Option<SharedPayload>) {
        move || (n, n, Some(vec![0xabu8; n as usize].into()))
    }

    #[test]
    fn add_ref_dedups() {
        let mut t = DedupTable::new();
        assert!(t.add_ref(1, payload(100)));
        assert!(!t.add_ref(1, payload(100)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1).expect("entry").refcount, 2);
        assert_eq!(t.physical_bytes(), 100);
    }

    #[test]
    fn release_frees_at_zero() {
        let mut t = DedupTable::new();
        t.add_ref(7, payload(64));
        t.add_ref(7, payload(64));
        assert!(!t.release(&7));
        assert_eq!(t.physical_bytes(), 64);
        assert!(t.release(&7));
        assert!(t.is_empty());
        assert_eq!(t.physical_bytes(), 0);
    }

    #[test]
    fn allocation_is_sequential_in_arrival_order() {
        let mut t = DedupTable::new();
        t.add_ref(1, payload(10));
        t.add_ref(2, payload(20));
        t.add_ref(3, payload(30));
        assert_eq!(t.get(&1).expect("e").phys, 0);
        assert_eq!(t.get(&2).expect("e").phys, 10);
        assert_eq!(t.get(&3).expect("e").phys, 30);
    }

    #[test]
    fn freed_space_is_not_reused() {
        let mut t = DedupTable::new();
        t.add_ref(1, payload(100));
        t.release(&1);
        t.add_ref(2, payload(5));
        assert_eq!(t.get(&2).expect("e").phys, 100, "append-only allocator");
    }

    #[test]
    #[should_panic(expected = "release of unknown block")]
    fn release_unknown_panics() {
        DedupTable::new().release(&99);
    }

    #[test]
    fn replace_payload_keeps_physical_bytes_exact() {
        let mut t = DedupTable::new();
        t.add_ref(1, payload(100));
        t.add_ref(2, payload(50));
        assert!(t.replace_payload(1, 30, Some(vec![1u8; 30].into())));
        assert_eq!(t.physical_bytes(), 80);
        assert_eq!(t.get(&1).expect("entry").psize, 30);
        assert!(!t.replace_payload(9, 10, None), "absent key is a no-op");
        assert_eq!(t.physical_bytes(), 80);
    }

    #[test]
    fn add_ref_records_logical_size() {
        let mut t = DedupTable::new();
        t.add_ref(1, || (40, 128, None));
        let e = t.get(&1).expect("entry");
        assert_eq!(e.psize, 40);
        assert_eq!(e.lsize, 128);
    }

    #[test]
    fn reassign_phys_moves_to_cursor_without_accounting_change() {
        let mut t = DedupTable::new();
        t.add_ref(1, payload(100));
        t.add_ref(2, payload(50));
        let before = t.physical_bytes();
        // Block 1 sat at 0; relocating it lands past block 2's extent.
        assert_eq!(t.reassign_phys(&1), Some((0, 100)));
        assert_eq!(t.get(&1).expect("e").phys, 150);
        assert_eq!(t.physical_bytes(), before, "holes, not growth");
        // The cursor advanced: the next new block lands after the move.
        t.add_ref(3, payload(7));
        assert_eq!(t.get(&3).expect("e").phys, 250);
        assert_eq!(t.reassign_phys(&99), None, "absent key is a no-op");
    }

    #[test]
    fn total_refs_counts_multiplicity() {
        let mut t = DedupTable::new();
        t.add_ref(1, payload(8));
        t.add_ref(1, payload(8));
        t.add_ref(2, payload(8));
        assert_eq!(t.total_refs(), 3);
    }
}
