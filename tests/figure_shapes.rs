//! Cross-crate integration: the qualitative shapes of the paper's figures
//! must hold on a small corpus. These are the claims the reproduction is
//! judged by — who wins, by roughly what factor, where crossovers fall.

use squirrel_repro::compress::Codec;
use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::analysis::{sweep, CompressionSampling, ContentSet};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        n_images: 24,
        scale: 4096,
        ..CorpusConfig::azure(4096, 2014)
    })
}

/// A small running system for the metric-snapshot figures.
fn system(nodes: u32, images: u32) -> Squirrel {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: images,
        scale: 2048,
        ..CorpusConfig::azure(2048, 2014)
    }));
    Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .block_size(16 * 1024)
            .build(),
        corpus,
    )
}

fn stats(c: &Corpus, set: ContentSet, bs: usize) -> squirrel_repro::dataset::analysis::SweepStats {
    sweep(c, set, bs, Codec::Gzip(6), CompressionSampling::default(), 0)
}

#[test]
fn figure2_dedup_and_gzip_trends_oppose() {
    let c = corpus();
    let small = stats(&c, ContentSet::Caches, 2048);
    let large = stats(&c, ContentSet::Caches, 65536);
    // Dedup improves with smaller blocks; gzip improves with larger ones.
    assert!(small.dedup_ratio() >= large.dedup_ratio());
    assert!(large.compression_ratio() > small.compression_ratio());
}

#[test]
fn figure3_codec_ordering() {
    let c = corpus();
    let ratio = |codec| {
        sweep(&c, ContentSet::Caches, 32768, codec, CompressionSampling::default(), 0)
            .compression_ratio()
    };
    let g6 = ratio(Codec::Gzip(6));
    let lzjb = ratio(Codec::Lzjb);
    let lz4 = ratio(Codec::Lz4);
    assert!(g6 > lzjb, "gzip-6 {g6} must beat lzjb {lzjb}");
    assert!(g6 > lz4, "gzip-6 {g6} must beat lz4 {lz4}");
}

#[test]
fn figure4_ccr_has_interior_plateau_for_caches() {
    // The paper's headline insight: smaller blocks do NOT always help.
    let c = corpus();
    let ccr = |bs| stats(&c, ContentSet::Caches, bs).ccr();
    let at_1k = ccr(1024);
    let at_32k = ccr(32768);
    assert!(
        at_32k > 0.85 * at_1k,
        "CCR must not collapse at large blocks: 32k {at_32k} vs 1k {at_1k}"
    );
}

#[test]
fn figure12_caches_far_more_similar_than_images() {
    let c = corpus();
    let caches = stats(&c, ContentSet::Caches, 16384).cross_similarity();
    let images = stats(&c, ContentSet::Images, 16384).cross_similarity();
    assert!(
        caches > 1.5 * images,
        "caches {caches} vs images {images}"
    );
    assert!(caches > 0.4, "caches similarity {caches}");
}

#[test]
fn table1_reduction_chain() {
    let c = corpus();
    let caches = stats(&c, ContentSet::Caches, 131072);
    let original: u64 = c.iter().map(|i| i.virtual_bytes()).sum();
    let nonzero: u64 = c.iter().map(|i| i.nonzero_bytes()).sum();
    let cache_raw = caches.nonzero_bytes();
    let cache_ccr = caches.deduped_compressed_bytes();
    // The four-step reduction of Table 1, each step significant.
    assert!(nonzero * 5 < original, "sparseness: {nonzero} vs {original}");
    assert!(cache_raw * 4 < nonzero, "working sets: {cache_raw} vs {nonzero}");
    assert!(cache_ccr * 2 < cache_raw, "CCR: {cache_ccr} vs {cache_raw}");
}

#[test]
fn figure13_ddt_growth_is_sublinear_in_registrations() {
    // Figure 13: the scVolume's dedup table grows far slower than the
    // number of hoarded caches — read straight off the metric snapshot's
    // `squirrel_scvol_ddt_entries` gauge after each registration. Like the
    // real catalog, the census head is one dominant family, so consecutive
    // registrations share heavily.
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        scale: 1024,
        ..CorpusConfig::test_corpus(16, 77)
    }));
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(1)
            .block_size(16 * 1024)
            .build(),
        corpus,
    );
    let mut ddt_after = Vec::new();
    for img in 0..8 {
        sq.register(img).expect("register");
        let snap = sq.metrics().snapshot();
        ddt_after.push(snap.gauge_u64("squirrel_scvol_ddt_entries").expect("gauge set"));
    }
    assert!(ddt_after[0] > 0);
    assert!(
        ddt_after.windows(2).all(|w| w[0] <= w[1]),
        "DDT only grows: {ddt_after:?}"
    );
    assert!(
        (ddt_after[7] as f64) < 5.0 * ddt_after[0] as f64,
        "eight caches must cost far less than eight DDTs: {ddt_after:?}"
    );
    // Cross-check against the per-block dedup counters: hits mean sharing.
    let snap = sq.metrics().snapshot();
    let hits = snap.counter("zpool_ddt_hits_total{pool=\"scvol\"}").unwrap_or(0);
    let misses = snap.counter("zpool_ddt_misses_total{pool=\"scvol\"}").expect("misses");
    assert!(hits > 0, "cross-image sharing must produce DDT hits");
    assert_eq!(ddt_after[7], misses, "every unique block is one DDT entry");
}

#[test]
fn figure18_warm_boots_move_no_bytes_cold_boots_do() {
    // Figure 18: compute-node NIC traffic during a boot storm, from the
    // snapshot's network counters instead of the ledger getters.
    let mut sq = system(4, 8);
    sq.register(0).expect("register");
    let before = sq.metrics().snapshot();
    for node in 0..4 {
        assert!(sq.boot(node, 0).expect("boot").warm);
    }
    let after_warm = sq.metrics().snapshot();
    assert_eq!(
        after_warm.counter("squirrel_boot_net_bytes_total"),
        before.counter("squirrel_boot_net_bytes_total").or(Some(0)),
        "warm boots add nothing to the boot traffic counter"
    );
    assert_eq!(
        after_warm.counter_sum("net_rx_bytes_total"),
        before.counter_sum("net_rx_bytes_total"),
        "warm boots put no bytes on any link"
    );
    for node in 0..4 {
        assert!(!sq.boot(node, 5).expect("boot").warm);
    }
    let after_cold = sq.metrics().snapshot();
    assert!(
        after_cold.counter("squirrel_boot_net_bytes_total").expect("counter")
            > after_warm.counter("squirrel_boot_net_bytes_total").unwrap_or(0),
        "cold boots cross the network"
    );
    assert_eq!(
        after_cold.counter("squirrel_boot_total{node=\"0\",result=\"warm\"}"),
        Some(1)
    );
    assert_eq!(
        after_cold.counter("squirrel_boot_total{node=\"0\",result=\"cold\"}"),
        Some(1)
    );
}

#[test]
fn figure6_registration_wire_beats_raw_cache() {
    // Figure 6's feasibility: what a registration multicasts (dedup +
    // gzip snapshot diff) is much smaller than the raw cache it hoards —
    // taken from the register counters of the snapshot.
    let mut sq = system(2, 8);
    for img in 0..4 {
        sq.register(img).expect("register");
    }
    let snap = sq.metrics().snapshot();
    let wire = snap.counter("squirrel_register_wire_bytes_total").expect("wire");
    let cache = snap.counter("squirrel_register_cache_bytes_total").expect("cache");
    assert!(wire < cache, "diff wire {wire} must be under raw cache {cache}");
    // The same reduction seen by the compression stage of the pool.
    let c_in = snap.counter("zpool_compress_in_bytes_total{pool=\"scvol\"}").expect("in");
    let c_out = snap.counter("zpool_compress_out_bytes_total{pool=\"scvol\"}").expect("out");
    assert!(c_out < c_in, "gzip-6 must shrink cache records: {c_out} vs {c_in}");
}

#[test]
fn caches_add_fewer_unique_blocks_than_images() {
    // Figure 13's mechanism, stated per-image.
    let c = corpus();
    let caches = stats(&c, ContentSet::Caches, 16384);
    let images = stats(&c, ContentSet::Images, 16384);
    let cache_unique_frac = caches.unique_blocks as f64 / caches.nonzero_blocks as f64;
    let image_unique_frac = images.unique_blocks as f64 / images.nonzero_blocks as f64;
    assert!(
        cache_unique_frac < image_unique_frac,
        "caches {cache_unique_frac} vs images {image_unique_frac}"
    );
}
