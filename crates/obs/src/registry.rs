//! The metrics registry and its cheaply clonable [`Metrics`] handles.

use crate::histogram::AtomicHistogram;
use crate::journal::{Event, EventJournal, FieldValue};
use crate::snapshot::{GaugeValue, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub(crate) struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    int_gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// f64 gauges stored as bit patterns.
    float_gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
    journal: Mutex<EventJournal>,
    /// Logical event sequence — the deterministic timestamp substitute.
    seq: AtomicU64,
    /// Wall-clock span accounting; kept out of the canonical snapshot so
    /// snapshots stay bit-identical across runs and thread counts.
    wall: Mutex<BTreeMap<String, WallStats>>,
}

/// Wall-clock statistics of a named span (non-deterministic by nature).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallStats {
    pub count: u64,
    pub total_nanos: u64,
    pub max_nanos: u64,
}

/// Owner of all metric state. Create one per system, hand [`Metrics`]
/// handles to instrumented components, and take [`snapshot`](Self::snapshot)s
/// from serial code.
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// Registry with the default journal capacity (1024 events).
    pub fn new() -> Self {
        Self::with_journal_capacity(1024)
    }

    pub fn with_journal_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                int_gauges: Mutex::new(BTreeMap::new()),
                float_gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                journal: Mutex::new(EventJournal::new(capacity)),
                seq: AtomicU64::new(0),
                wall: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// An enabled handle onto this registry (no labels).
    pub fn handle(&self) -> Metrics {
        Metrics { inner: Some(Arc::clone(&self.inner)), labels: Vec::new() }
    }

    /// The canonical, deterministic state: counters, gauges, histograms
    /// (sorted by series name) and the journal. Wall-clock timings are
    /// deliberately absent — see [`wall_times`](Self::wall_times).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let mut gauges: Vec<(String, GaugeValue)> = self
            .inner
            .int_gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), GaugeValue::Int(v.load(Ordering::Relaxed))))
            .collect();
        gauges.extend(
            self.inner
                .float_gauges
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| {
                    (k.clone(), GaugeValue::Float(f64::from_bits(v.load(Ordering::Relaxed))))
                }),
        );
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        let (events, events_dropped) = self.inner.journal.lock().expect("metrics lock").snapshot();
        MetricsSnapshot { counters, gauges, histograms, events, events_dropped }
    }

    /// Wall-clock span timings, sorted by span name. Useful for performance
    /// reports; excluded from [`snapshot`](Self::snapshot) because elapsed
    /// time is not deterministic.
    pub fn wall_times(&self) -> Vec<(String, WallStats)> {
        self.inner
            .wall
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// A handle instrumented components record through. Clone freely; a
/// disabled handle (the [`Default`]) turns every operation into a cheap
/// no-op. Labels attached with [`with_label`](Self::with_label) become part
/// of every series name the handle interns.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Inner>>,
    labels: Vec<(String, String)>,
}

impl Metrics {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Metrics::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A derived handle whose interned series carry `key="value"` in
    /// addition to the current labels.
    pub fn with_label(&self, key: &str, value: &str) -> Metrics {
        let mut labels = self.labels.clone();
        labels.push((key.to_string(), value.to_string()));
        Metrics { inner: self.inner.clone(), labels }
    }

    /// Render the full series name: `name{k="v",...}`.
    fn render(&self, name: &str, extra: &[(&str, &str)]) -> String {
        if self.labels.is_empty() && extra.is_empty() {
            return name.to_string();
        }
        let mut s = String::with_capacity(name.len() + 16);
        s.push_str(name);
        s.push('{');
        let own = self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str()));
        for (i, (k, v)) in own.chain(extra.iter().copied()).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push_str("=\"");
            s.push_str(v);
            s.push('"');
        }
        s.push('}');
        s
    }

    /// Intern a counter handle for hot paths (one map lookup, then pure
    /// atomic adds).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else { return Counter::default() };
        let id = self.render(name, labels);
        let cell = Arc::clone(
            inner.counters.lock().expect("metrics lock").entry(id).or_default(),
        );
        Counter(Some(cell))
    }

    /// One-shot counter add (interns on each call; fine for cold paths).
    pub fn add(&self, name: &str, delta: u64) {
        if self.inner.is_some() {
            self.counter(name).add(delta);
        }
    }

    pub fn add_with(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if self.inner.is_some() {
            self.counter_with(name, labels).add(delta);
        }
    }

    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set an integer gauge. Determinism contract: call only from serial
    /// orchestration code (last-writer-wins is order sensitive).
    pub fn set_gauge(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let id = self.render(name, &[]);
        inner
            .int_gauges
            .lock()
            .expect("metrics lock")
            .entry(id)
            .or_default()
            .store(value, Ordering::Relaxed);
    }

    /// Set a float gauge (same serial-only contract as [`set_gauge`](Self::set_gauge)).
    pub fn set_gauge_f64(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let id = self.render(name, &[]);
        inner
            .float_gauges
            .lock()
            .expect("metrics lock")
            .entry(id)
            .or_default()
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Intern a histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else { return Histogram::default() };
        let id = self.render(name, &[]);
        let cell = Arc::clone(
            inner
                .histograms
                .lock()
                .expect("metrics lock")
                .entry(id)
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        );
        Histogram(Some(cell))
    }

    /// One-shot histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).observe(value);
        }
    }

    /// Append a structured event to the journal. Serial-only (events carry
    /// a registry-wide sequence number; emitting them from parallel workers
    /// would make the order nondeterministic).
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let fields = fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        inner
            .journal
            .lock()
            .expect("metrics lock")
            .push(Event { seq, name: name.to_string(), fields });
    }

    /// Start a scoped span timer. On drop it records wall time under the
    /// span name (into the non-deterministic section) and emits one journal
    /// event carrying the fields attached via [`Span::field`].
    pub fn span(&self, name: &str) -> Span {
        Span {
            metrics: self.clone(),
            name: name.to_string(),
            start: self.inner.is_some().then(Instant::now),
            fields: Vec::new(),
            quiet: false,
        }
    }

    /// Journal-quiet variant of [`span`](Self::span): wall time still lands
    /// in [`MetricsRegistry::wall_times`], but no journal event is emitted
    /// on drop. For hot-path stage timers (e.g. per-ingest prepare/commit)
    /// whose per-call events would flood the journal and disturb the
    /// workflow-level event sequence that tests pin.
    pub fn timer(&self, name: &str) -> Span {
        Span {
            metrics: self.clone(),
            name: name.to_string(),
            start: self.inner.is_some().then(Instant::now),
            fields: Vec::new(),
            quiet: true,
        }
    }
}

/// Interned counter cell; all operations are no-ops when disabled.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

/// Interned histogram cell; no-op when disabled.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<AtomicHistogram>>);

impl Histogram {
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.observe(value);
        }
    }
}

/// A scoped timer created by [`Metrics::span`]. Deterministic fields are
/// attached with [`field`](Self::field) and land in the journal; the
/// elapsed wall time lands in [`MetricsRegistry::wall_times`] only.
pub struct Span {
    metrics: Metrics,
    name: String,
    start: Option<Instant>,
    fields: Vec<(String, FieldValue)>,
    /// Journal-quiet ([`Metrics::timer`]): record wall time only.
    quiet: bool,
}

impl Span {
    /// Attach a deterministic field to the span's completion event.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else { return };
        let Some(inner) = &self.metrics.inner else { return };
        let nanos = start.elapsed().as_nanos() as u64;
        {
            let mut wall = inner.wall.lock().expect("metrics lock");
            let w = wall.entry(self.metrics.render(&self.name, &[])).or_default();
            w.count += 1;
            w.total_nanos += nanos;
            w.max_nanos = w.max_nanos.max(nanos);
        }
        if self.quiet {
            return;
        }
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let fields = std::mem::take(&mut self.fields);
        inner
            .journal
            .lock()
            .expect("metrics lock")
            .push(Event { seq, name: self.name.clone(), fields });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        m.add("z_total", 2);
        m.add("a_total", 1);
        let c = m.counter("z_total");
        c.add(3);
        assert_eq!(c.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_total".to_string(), 1), ("z_total".to_string(), 5)]
        );
    }

    #[test]
    fn labels_become_part_of_series_identity() {
        let reg = MetricsRegistry::new();
        let m = reg.handle().with_label("pool", "scvol");
        m.add("ingest_total", 1);
        m.add_with("boot_total", &[("node", "3")], 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ingest_total{pool=\"scvol\"}"), Some(1));
        assert_eq!(snap.counter("boot_total{pool=\"scvol\",node=\"3\"}"), Some(2));
        assert_eq!(snap.counter("ingest_total"), None, "unlabeled series absent");
    }

    #[test]
    fn disabled_handle_is_a_noop() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.add("x", 1);
        m.set_gauge("g", 7);
        m.observe("h", 9);
        m.event("e", &[("k", FieldValue::U64(1))]);
        let c = m.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let mut span = m.span("s");
        span.field("f", 1u64);
        drop(span);
        // Nothing to assert against — the point is no panic and no storage.
    }

    #[test]
    fn gauges_last_write_wins_and_floats_round_trip() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        m.set_gauge("ddt_entries", 10);
        m.set_gauge("ddt_entries", 42);
        m.set_gauge_f64("hit_rate", 0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge_u64("ddt_entries"), Some(42));
        assert_eq!(snap.gauge_f64("hit_rate"), Some(0.75));
    }

    #[test]
    fn span_emits_event_and_wall_stats() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        {
            let mut span = m.span("register");
            span.field("wire_bytes", 123u64);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, "register");
        assert_eq!(snap.events[0].field("wire_bytes"), Some(&FieldValue::U64(123)));
        let wall = reg.wall_times();
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].0, "register");
        assert_eq!(wall[0].1.count, 1);
    }

    #[test]
    fn timer_records_wall_time_without_journal_event() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        drop(m.timer("ingest_commit"));
        drop(m.timer("ingest_commit"));
        let snap = reg.snapshot();
        assert!(snap.events.is_empty(), "timers must stay out of the journal");
        let wall = reg.wall_times();
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].0, "ingest_commit");
        assert_eq!(wall[0].1.count, 2);
    }

    #[test]
    fn event_sequence_numbers_are_monotonic() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        m.event("a", &[]);
        m.event("b", &[]);
        m.event("c", &[]);
        let snap = reg.snapshot();
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_increments_sum_deterministically() {
        let reg = MetricsRegistry::new();
        let m = reg.handle();
        let c = m.counter("total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("total"), Some(4000));
    }
}
