//! Failure-domain topology: region → datacenter → rack → node.
//!
//! The flat switch the seed model assumed cannot express *correlated*
//! failures — a rack losing power takes every node behind its top-of-rack
//! switch off the network at once, which is a very different adversary than
//! N uncorrelated crashes. This module gives the cluster a deterministic
//! hierarchy ([`Topology`], built from a [`TopologyConfig`]), classifies
//! every link by the highest boundary it crosses ([`LinkScope`]), and
//! provides a CRUSH-style placement function that spreads replicas or
//! erasure-coded shards across distinct failure domains.
//!
//! Everything here is pure, deterministic arithmetic: node `i` lives in
//! global rack `i % racks`, racks roll up into datacenters and regions by
//! integer division, and placement scores come from a SplitMix64-style hash
//! of `(key, node)`. No ambient randomness, no wall clocks — the same
//! inputs give the same placement on every run and at every thread count.

use crate::netsim::NodeId;

/// Shape of the failure-domain hierarchy. [`TopologyConfig::flat`] (one
/// region, one datacenter, one rack) reproduces the seed model exactly:
/// every link is intra-rack and no domain outage can cut anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyConfig {
    /// Geographic regions.
    pub regions: u32,
    /// Datacenters per region.
    pub dcs_per_region: u32,
    /// Racks per datacenter.
    pub racks_per_dc: u32,
}

impl TopologyConfig {
    /// The degenerate single-rack topology of the original flat model.
    pub fn flat() -> Self {
        TopologyConfig { regions: 1, dcs_per_region: 1, racks_per_dc: 1 }
    }

    /// Total racks across the whole hierarchy.
    pub fn total_racks(&self) -> u32 {
        self.regions.max(1) * self.dcs_per_region.max(1) * self.racks_per_dc.max(1)
    }

    /// Total datacenters across the whole hierarchy.
    pub fn total_datacenters(&self) -> u32 {
        self.regions.max(1) * self.dcs_per_region.max(1)
    }

    /// Does this topology have more than one failure domain at any level?
    pub fn is_flat(&self) -> bool {
        self.total_racks() == 1
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self::flat()
    }
}

/// A node's position in the hierarchy, as global (not per-parent) ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Domain {
    pub region: u32,
    pub datacenter: u32,
    pub rack: u32,
}

/// The highest failure-domain boundary a link crosses. Orders by cost:
/// intra-rack < cross-rack < cross-DC < cross-region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkScope {
    /// Both endpoints behind the same top-of-rack switch.
    IntraRack,
    /// Same datacenter, different racks.
    CrossRack,
    /// Same region, different datacenters.
    CrossDatacenter,
    /// Different regions.
    CrossRegion,
}

impl LinkScope {
    /// Multiplier on a transfer's link-occupancy seconds: aggregation
    /// layers oversubscribe, so a byte crossing a higher boundary costs
    /// strictly more wall-clock than an intra-rack byte. Intra-rack is
    /// exactly `1.0` so a flat topology reproduces the seed cost model
    /// bit-for-bit.
    pub fn cost_multiplier(&self) -> f64 {
        match self {
            LinkScope::IntraRack => 1.0,
            LinkScope::CrossRack => 2.0,
            LinkScope::CrossDatacenter => 5.0,
            LinkScope::CrossRegion => 12.0,
        }
    }

    /// Stable identifier for metric labels and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            LinkScope::IntraRack => "intra-rack",
            LinkScope::CrossRack => "cross-rack",
            LinkScope::CrossDatacenter => "cross-dc",
            LinkScope::CrossRegion => "cross-region",
        }
    }

    /// All scopes, in increasing cost order (index matches `as usize`).
    pub const ALL: [LinkScope; 4] = [
        LinkScope::IntraRack,
        LinkScope::CrossRack,
        LinkScope::CrossDatacenter,
        LinkScope::CrossRegion,
    ];
}

/// SplitMix64 finalizer — the placement hash. Mirrors the generator the
/// dataset and faults crates use, duplicated to keep this crate a leaf.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The assembled hierarchy: every node's [`Domain`], link classification,
/// and CRUSH-style placement. Construction is deterministic: node `i` sits
/// in global rack `i % total_racks`, so compute and storage nodes (which
/// get consecutive id ranges) both spread round-robin across every rack.
#[derive(Clone, Debug)]
pub struct Topology {
    config: TopologyConfig,
    domains: Vec<Domain>,
}

impl Topology {
    pub fn new(config: TopologyConfig, nodes: usize) -> Self {
        let racks = config.total_racks();
        let domains = (0..nodes as u32)
            .map(|i| {
                let rack = i % racks;
                let datacenter = rack / config.racks_per_dc.max(1);
                let region = datacenter / config.dcs_per_region.max(1);
                Domain { region, datacenter, rack }
            })
            .collect();
        Topology { config, domains }
    }

    pub fn config(&self) -> TopologyConfig {
        self.config
    }

    pub fn node_count(&self) -> usize {
        self.domains.len()
    }

    /// The node's position; panics on an unknown node id.
    pub fn domain(&self, node: NodeId) -> Domain {
        self.domains[node as usize]
    }

    pub fn rack_of(&self, node: NodeId) -> u32 {
        self.domains[node as usize].rack
    }

    pub fn datacenter_of(&self, node: NodeId) -> u32 {
        self.domains[node as usize].datacenter
    }

    pub fn region_of(&self, node: NodeId) -> u32 {
        self.domains[node as usize].region
    }

    /// Nodes homed in global rack `rack`, in id order.
    pub fn nodes_in_rack(&self, rack: u32) -> Vec<NodeId> {
        (0..self.domains.len() as u32)
            .filter(|&n| self.domains[n as usize].rack == rack)
            .collect()
    }

    /// Nodes homed in global datacenter `dc`, in id order.
    pub fn nodes_in_datacenter(&self, dc: u32) -> Vec<NodeId> {
        (0..self.domains.len() as u32)
            .filter(|&n| self.domains[n as usize].datacenter == dc)
            .collect()
    }

    /// Classify the link between two nodes by the highest boundary it
    /// crosses.
    pub fn scope(&self, a: NodeId, b: NodeId) -> LinkScope {
        let da = self.domains[a as usize];
        let db = self.domains[b as usize];
        if da.region != db.region {
            LinkScope::CrossRegion
        } else if da.datacenter != db.datacenter {
            LinkScope::CrossDatacenter
        } else if da.rack != db.rack {
            LinkScope::CrossRack
        } else {
            LinkScope::IntraRack
        }
    }

    /// CRUSH-style deterministic placement: choose `count` nodes from
    /// `candidates` for object `key`, spreading across distinct racks.
    ///
    /// Every candidate gets a pseudo-random score from `hash(key, node)`
    /// (rendezvous / highest-random-weight hashing); candidates are visited
    /// in descending score order, first taking only nodes whose rack is not
    /// yet used, then — if `count` exceeds the racks represented — relaxing
    /// to distinct nodes. The result depends only on `(key, candidates)`,
    /// so placement survives restarts and is identical at every thread
    /// count; losing a candidate only moves the shards it hosted.
    pub fn place(&self, key: u64, candidates: &[NodeId], count: usize) -> Vec<NodeId> {
        let mut scored: Vec<(u64, NodeId)> = candidates
            .iter()
            .map(|&n| (mix64(key ^ (u64::from(n)).wrapping_mul(0x2545_f491_4f6c_dd1d)), n))
            .collect();
        // Descending score; node id breaks (astronomically unlikely) ties.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
        let mut used_racks = std::collections::BTreeSet::new();
        for &(_, n) in &scored {
            if chosen.len() == count {
                break;
            }
            if used_racks.insert(self.rack_of(n)) {
                chosen.push(n);
            }
        }
        for &(_, n) in &scored {
            if chosen.len() == count {
                break;
            }
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_is_one_rack() {
        let t = Topology::new(TopologyConfig::flat(), 8);
        assert!(t.config().is_flat());
        for n in 0..8 {
            assert_eq!(t.domain(n), Domain { region: 0, datacenter: 0, rack: 0 });
        }
        assert_eq!(t.scope(0, 7), LinkScope::IntraRack);
        assert_eq!(t.nodes_in_rack(0).len(), 8);
    }

    #[test]
    fn nodes_round_robin_across_racks() {
        let cfg = TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 };
        let t = Topology::new(cfg, 12);
        assert_eq!(cfg.total_racks(), 4);
        assert_eq!(cfg.total_datacenters(), 2);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(5), 1);
        assert_eq!(t.nodes_in_rack(2), vec![2, 6, 10]);
        // Racks 0,1 are DC 0; racks 2,3 are DC 1.
        assert_eq!(t.datacenter_of(1), 0);
        assert_eq!(t.datacenter_of(2), 1);
        assert_eq!(t.nodes_in_datacenter(1), vec![2, 3, 6, 7, 10, 11]);
    }

    #[test]
    fn scope_orders_by_boundary() {
        let cfg = TopologyConfig { regions: 2, dcs_per_region: 2, racks_per_dc: 2 };
        let t = Topology::new(cfg, 16);
        // Node i in rack i%8: racks 0..4 = region 0, racks 4..8 = region 1.
        assert_eq!(t.scope(0, 8), LinkScope::IntraRack);
        assert_eq!(t.scope(0, 1), LinkScope::CrossRack);
        assert_eq!(t.scope(0, 2), LinkScope::CrossDatacenter);
        assert_eq!(t.scope(0, 4), LinkScope::CrossRegion);
        assert!(LinkScope::IntraRack < LinkScope::CrossRack);
        assert!(LinkScope::CrossRack.cost_multiplier() > LinkScope::IntraRack.cost_multiplier());
        assert!(
            LinkScope::CrossDatacenter.cost_multiplier() > LinkScope::CrossRack.cost_multiplier()
        );
        assert_eq!(LinkScope::CrossDatacenter.name(), "cross-dc");
    }

    #[test]
    fn placement_prefers_distinct_racks() {
        let cfg = TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 };
        let t = Topology::new(cfg, 12);
        let candidates: Vec<NodeId> = (4..12).collect(); // two per rack
        for key in 0..32u64 {
            let placed = t.place(key, &candidates, 4);
            assert_eq!(placed.len(), 4);
            let racks: std::collections::BTreeSet<u32> =
                placed.iter().map(|&n| t.rack_of(n)).collect();
            assert_eq!(racks.len(), 4, "key {key}: all four racks used: {placed:?}");
        }
    }

    #[test]
    fn placement_relaxes_to_distinct_nodes_when_racks_run_out() {
        let cfg = TopologyConfig { regions: 1, dcs_per_region: 1, racks_per_dc: 2 };
        let t = Topology::new(cfg, 8);
        let candidates: Vec<NodeId> = (0..8).collect();
        let placed = t.place(7, &candidates, 6);
        assert_eq!(placed.len(), 6);
        let distinct: std::collections::BTreeSet<NodeId> = placed.iter().copied().collect();
        assert_eq!(distinct.len(), 6, "no node hosts two shards: {placed:?}");
    }

    #[test]
    fn placement_is_deterministic_and_key_sensitive() {
        let cfg = TopologyConfig { regions: 1, dcs_per_region: 2, racks_per_dc: 2 };
        let t = Topology::new(cfg, 16);
        let candidates: Vec<NodeId> = (8..16).collect();
        assert_eq!(t.place(42, &candidates, 4), t.place(42, &candidates, 4));
        let spread: std::collections::BTreeSet<Vec<NodeId>> =
            (0..64u64).map(|k| t.place(k, &candidates, 4)).collect();
        assert!(spread.len() > 1, "different keys spread placements");
    }
}
