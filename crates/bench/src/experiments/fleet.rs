//! Fleet-scale traffic soak (`squirrel_core::run_fleet`): Zipf + diurnal
//! demand over an elastic fleet on the discrete-event scheduler, swept over
//! fleet size × distribution policy.
//!
//! Each cell runs the same seeded three-day scenario — catalog rollout,
//! per-hour autoscaling with rejoin re-hoarding, boot storms, nightly
//! decay/GC/scrub — under *unicast* and *peer-assisted* distribution. The
//! demand trajectory is policy-invariant (policies only change which ledger
//! a byte lands in), so degraded-boot rates must be **exactly** equal while
//! peer-assisted must move strictly fewer storage-tier bytes per day.
//!
//! Every cell repeats at each worker-thread count; the [`FleetReport`]s and
//! metric snapshots must be bit-identical across the sweep.
//!
//! Results land in `results/BENCH_fleet.json`.

use crate::config::ExperimentConfig;
use crate::csvout::fmt_f;
use crate::experiments::bootstorm::thread_sweep;
use squirrel_core::{run_fleet_with_metrics, DistributionPolicy, FleetConfig, FleetReport};

/// Fleet sizes swept (compute-node slots).
pub const FLEET_NODE_COUNTS: [u32; 2] = [100, 1000];
/// Simulated days per soak.
pub const FLEET_DAYS: u64 = 3;
/// The policies compared: the naive baseline and the paper-favoured one.
pub const FLEET_POLICIES: [DistributionPolicy; 2] =
    [DistributionPolicy::Unicast, DistributionPolicy::PeerAssisted];

/// One (fleet size, policy) soak. Equality across thread counts is the
/// determinism witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetCell {
    pub nodes: u32,
    pub policy: DistributionPolicy,
    pub report: FleetReport,
}

/// One thread count's full sweep.
#[derive(Clone, Debug)]
pub struct FleetBenchRun {
    pub threads: usize,
    pub wall_secs: f64,
    pub cells: Vec<FleetCell>,
}

/// Scenario shape for one cell. Faults stay quiet and the budget unlimited
/// so the demand trajectory — and with it the degraded-boot rate — is
/// identical under every policy; the decay/budget/chaos machinery is
/// exercised by the core and facade soak tests instead.
fn fleet_config(
    cfg: &ExperimentConfig,
    nodes: u32,
    policy: DistributionPolicy,
    threads: usize,
) -> FleetConfig {
    FleetConfig {
        days: FLEET_DAYS,
        images: cfg.images.min(12),
        scale: cfg.scale.max(8192),
        nodes,
        min_online: (nodes / 10).clamp(4, nodes),
        seed: cfg.seed,
        threads,
        boots_per_day: (nodes / 2).clamp(24, 512),
        storm_vms: nodes.min(16),
        distribution: policy,
        ..FleetConfig::default()
    }
}

/// One thread count's sweep over every fleet size × policy.
fn sweep_once(
    cfg: &ExperimentConfig,
    node_counts: &[u32],
    threads: usize,
) -> (Vec<FleetCell>, Vec<squirrel_obs::MetricsSnapshot>) {
    let mut cells = Vec::new();
    let mut snaps = Vec::new();
    for &nodes in node_counts {
        for policy in FLEET_POLICIES {
            let fc = fleet_config(cfg, nodes, policy, threads);
            let (report, snap) = run_fleet_with_metrics(&fc);
            cells.push(FleetCell { nodes, policy, report });
            snaps.push(snap);
        }
    }
    (cells, snaps)
}

/// Whole-sweep acceptance gates, computed from the reference run's cells.
struct Gates {
    p99_finite: bool,
    degraded_rate_bounded: bool,
    degraded_rates_equal: bool,
    peer_storage_below_unicast: bool,
}

fn gates(cells: &[FleetCell]) -> Gates {
    let pair = |nodes: u32, policy: DistributionPolicy| {
        cells
            .iter()
            .find(|c| c.nodes == nodes && c.policy == policy)
            .map(|c| &c.report)
    };
    let mut node_counts: Vec<u32> = cells.iter().map(|c| c.nodes).collect();
    node_counts.dedup();
    let mut degraded_rates_equal = true;
    let mut peer_storage_below_unicast = true;
    for nodes in node_counts {
        let (Some(uni), Some(peer)) = (
            pair(nodes, DistributionPolicy::Unicast),
            pair(nodes, DistributionPolicy::PeerAssisted),
        ) else {
            continue;
        };
        degraded_rates_equal &= uni.degraded_per_10k == peer.degraded_per_10k;
        peer_storage_below_unicast &=
            peer.storage_bytes_per_day() < uni.storage_bytes_per_day();
    }
    Gates {
        p99_finite: cells
            .iter()
            .all(|c| c.report.p99_boot_ms > 0 && c.report.p99_boot_ms < 3_600_000),
        degraded_rate_bounded: cells.iter().all(|c| c.report.degraded_per_10k <= 500),
        degraded_rates_equal,
        peer_storage_below_unicast,
    }
}

/// Sweep the thread counts, assert determinism and the policy gates, and
/// persist `BENCH_fleet.json`.
pub fn run_fleet_bench(cfg: &ExperimentConfig, node_counts: &[u32]) -> Vec<FleetBenchRun> {
    let mut reference_snaps: Option<Vec<squirrel_obs::MetricsSnapshot>> = None;
    let runs: Vec<FleetBenchRun> = thread_sweep(cfg)
        .into_iter()
        .map(|threads| {
            let t = std::time::Instant::now();
            let (cells, snaps) = sweep_once(cfg, node_counts, threads);
            match &reference_snaps {
                None => reference_snaps = Some(snaps),
                Some(reference) => assert_eq!(
                    &snaps, reference,
                    "threads={threads}: metric snapshots diverged"
                ),
            }
            FleetBenchRun { threads, wall_secs: t.elapsed().as_secs_f64(), cells }
        })
        .collect();

    let first = &runs[0];
    for run in &runs {
        assert_eq!(
            run.cells, first.cells,
            "threads={} diverged from threads={}",
            run.threads, first.threads
        );
    }

    let g = gates(&first.cells);
    assert!(g.p99_finite, "p99 out of range: {:#?}", first.cells);
    assert!(g.degraded_rate_bounded, "degraded rate unbounded: {:#?}", first.cells);
    assert!(g.degraded_rates_equal, "policies changed the demand outcome");
    assert!(
        g.peer_storage_below_unicast,
        "peer-assisted failed to relieve the storage tier"
    );

    for cell in &first.cells {
        let r = &cell.report;
        println!(
            "fleet nodes={} policy={}: {} boots ({} warm, {} degraded, {} failed), \
             p50 {} ms, p99 {} ms, {} storage B/day, {} peer B, {} joins/{} leaves",
            cell.nodes,
            cell.policy.name(),
            r.boots,
            r.warm_boots,
            r.degraded_boots,
            r.failed_boots,
            r.p50_boot_ms,
            r.p99_boot_ms,
            r.storage_bytes_per_day(),
            r.peer_bytes,
            r.joins,
            r.leaves,
        );
    }

    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_fleet.json");
        std::fs::write(&path, render_json(cfg, &runs)).expect("write BENCH_fleet.json");
        println!("fleet bench written to {}", path.display());
    }
    runs
}

/// Hand-rolled JSON (the workspace is std-only by policy). The acceptance
/// booleans are recomputed from the cells, not echoed from the asserts.
fn render_json(cfg: &ExperimentConfig, runs: &[FleetBenchRun]) -> String {
    let cells = &runs[0].cells;
    let g = gates(cells);
    let cell_entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            let day_rows: Vec<String> = r
                .days
                .iter()
                .map(|d| {
                    format!(
                        "      {{\"day\": {}, \"boots\": {}, \"warm_boots\": {}, \
                         \"degraded_boots\": {}, \"failed_boots\": {}, \
                         \"p50_boot_ms\": {}, \"p99_boot_ms\": {}, \
                         \"storage_tier_bytes\": {}, \"peer_bytes\": {}, \
                         \"joins\": {}, \"leaves\": {}}}",
                        d.day,
                        d.boots,
                        d.warm_boots,
                        d.degraded_boots,
                        d.failed_boots,
                        d.p50_boot_ms,
                        d.p99_boot_ms,
                        d.storage_tier_bytes,
                        d.peer_bytes,
                        d.joins,
                        d.leaves,
                    )
                })
                .collect();
            format!(
                "    {{\"policy\": \"{}\", \"nodes\": {}, \"events\": {}, \
                 \"boots\": {}, \"warm_boots\": {}, \"degraded_boots\": {}, \
                 \"failed_boots\": {}, \"storms\": {}, \"p50_boot_ms\": {}, \
                 \"p99_boot_ms\": {}, \"degraded_per_10k\": {}, \
                 \"storage_tier_bytes\": {}, \"storage_bytes_per_day\": {}, \
                 \"peer_bytes\": {}, \"joins\": {}, \"leaves\": {}, \
                 \"evictions\": {}, \"popularity_decays\": {}, \
                 \"read_checksum\": \"{}\",\n     \"days\": [\n{}\n    ]}}",
                c.policy.name(),
                c.nodes,
                r.events,
                r.boots,
                r.warm_boots,
                r.degraded_boots,
                r.failed_boots,
                r.storms,
                r.p50_boot_ms,
                r.p99_boot_ms,
                r.degraded_per_10k,
                r.storage_tier_bytes,
                r.storage_bytes_per_day(),
                r.peer_bytes,
                r.joins,
                r.leaves,
                r.evictions,
                r.popularity_decays,
                r.read_checksum,
                day_rows.join(",\n"),
            )
        })
        .collect();
    let run_entries: Vec<String> = runs
        .iter()
        .map(|run| {
            format!(
                "    {{\"threads\": {}, \"wall_secs\": {}}}",
                run.threads,
                fmt_f(run.wall_secs)
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": {},\n  \"days\": {FLEET_DAYS},\n  \
         \"deterministic_across_threads\": true,\n  \
         \"p99_finite\": {},\n  \
         \"degraded_rate_bounded\": {},\n  \
         \"degraded_rates_equal\": {},\n  \
         \"peer_storage_below_unicast\": {},\n  \
         \"cells\": [\n{}\n  ],\n  \"runs\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        g.p99_finite,
        g.degraded_rate_bounded,
        g.degraded_rates_equal,
        g.peer_storage_below_unicast,
        cell_entries.join(",\n"),
        run_entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fleet small enough for debug-mode CI.
    const SMOKE_NODES: [u32; 1] = [8];

    #[test]
    fn fleet_sweep_is_deterministic_and_gates_hold() {
        let cfg = ExperimentConfig::smoke();
        let runs = run_fleet_bench(&cfg, &SMOKE_NODES);
        assert_eq!(runs.len(), 3);
        let cells = &runs[0].cells;
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.report.boots > 0));
        assert!(cells.iter().all(|c| c.report.days.len() == FLEET_DAYS as usize));
        // Elastic autoscaling actually cycled nodes.
        assert!(cells.iter().all(|c| c.report.joins > 0 && c.report.leaves > 0));
        // The nightly maintenance pass ran popularity decay.
        assert!(cells.iter().all(|c| c.report.popularity_decays > 0));
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let cfg = ExperimentConfig { threads: 1, ..ExperimentConfig::smoke() };
        let (cells, _) = sweep_once(&cfg, &SMOKE_NODES, 1);
        let runs = vec![FleetBenchRun { threads: 1, wall_secs: 0.1, cells }];
        let json = render_json(&cfg, &runs);
        for key in [
            "\"deterministic_across_threads\": true",
            "\"p99_finite\": true",
            "\"degraded_rate_bounded\": true",
            "\"degraded_rates_equal\": true",
            "\"peer_storage_below_unicast\": true",
            "\"cells\"",
            "\"days\"",
            "\"storage_bytes_per_day\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
