//! Ablations DESIGN.md calls out beyond the paper's own figures:
//!
//! * **Sync mechanism** (Section 3.5's discussion): incremental snapshot
//!   diff via multicast versus an rsync-style per-node full cache transfer.
//! * **CCR decomposition**: how much of the combined ratio comes from
//!   deduplication alone, compression alone, and both (the paper motivates
//!   the combination but never separates the contributions on storage).

use crate::config::ExperimentConfig;
use crate::csvout::{fmt_f, mib, Table};
use squirrel_cluster::LinkKind;
use squirrel_compress::Codec;
use squirrel_core::{Squirrel, SquirrelConfig};
use squirrel_dataset::analysis::{sweep, CompressionSampling, ContentSet};
use squirrel_zfs::{PoolConfig, ZPool};
use std::sync::Arc;

/// One registration's propagation cost under the three sync mechanisms.
#[derive(Clone, Copy, Debug)]
pub struct SyncAblation {
    /// Multicast incremental diff: bytes leaving the storage node.
    pub diff_multicast_tx: u64,
    /// LANTorrent-style pipeline of the diff: storage sends once, nodes
    /// relay; storage egress equals the diff, total fabric bytes are n×diff.
    pub diff_pipeline_fabric: u64,
    /// rsync-style: the full (deduplicated, compressed) cache to every node.
    pub rsync_full_tx: u64,
    pub nodes: u32,
}

/// Compare propagation mechanisms for a sequence of registrations.
pub fn run_ablation_sync(cfg: &ExperimentConfig) -> SyncAblation {
    let corpus = cfg.corpus();
    let nodes = 16u32;
    let mut sq = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .storage_nodes(4)
            .link(LinkKind::GbE)
            .build(),
        Arc::clone(&corpus),
    );
    let regs = corpus.len().min(24) as u32;
    let mut diff_tx = 0u64;
    let mut full_tx = 0u64;
    for img in 0..regs {
        let r = sq.register(img).expect("register");
        // Multicast: the diff leaves the storage node once.
        diff_tx += r.diff_wire_bytes;
        // rsync-style: each node pulls the whole (compressed) cache.
        full_tx += r.cache_bytes / 2 * nodes as u64; // ~gzip'd cache per node
    }
    // Pipeline: same storage egress as multicast, but every relay hop puts
    // the diff on the fabric once more.
    let pipeline_fabric = diff_tx * nodes as u64;
    let result = SyncAblation {
        diff_multicast_tx: diff_tx,
        diff_pipeline_fabric: pipeline_fabric,
        rsync_full_tx: full_tx,
        nodes,
    };
    let mut t = Table::new(&["mechanism", "storage_tx_mib", "fabric_total_mib", "per_registration_mib"]);
    t.push(vec![
        "incremental diff + multicast".into(),
        mib(diff_tx as f64),
        mib(diff_tx as f64),
        mib(diff_tx as f64 / regs as f64),
    ]);
    t.push(vec![
        "incremental diff + LANTorrent pipeline".into(),
        mib(diff_tx as f64),
        mib(pipeline_fabric as f64),
        mib(diff_tx as f64 / regs as f64),
    ]);
    t.push(vec![
        format!("rsync-style full cache x {nodes} nodes"),
        mib(full_tx as f64),
        mib(full_tx as f64),
        mib(full_tx as f64 / regs as f64),
    ]);
    t.print("Ablation: cache propagation mechanism (storage-node egress)");
    t.write(&cfg.out_dir, "ablation_sync").expect("csv");
    result
}

/// CCR decomposition at one block size.
#[derive(Clone, Copy, Debug)]
pub struct CcrAblation {
    pub block_size: usize,
    pub logical_bytes: u64,
    pub dedup_only_bytes: u64,
    pub compress_only_bytes: u64,
    pub both_bytes: u64,
}

/// Measure the decomposition from a corpus sweep (dedup) and pool stores.
pub fn run_ablation_ccr(cfg: &ExperimentConfig, bs: usize) -> CcrAblation {
    let corpus = cfg.corpus();
    let stats = sweep(
        &corpus,
        ContentSet::Caches,
        bs,
        Codec::Gzip(6),
        CompressionSampling::default(),
        cfg.threads,
    );
    let logical = stats.nonzero_bytes();
    let dedup_only = stats.unique_blocks * bs as u64;
    let compress_only = (logical as f64 * stats.mean_compressed_fraction) as u64;
    let both = stats.deduped_compressed_bytes();

    // Cross-check `both` against a real pool store.
    let mut pool = ZPool::new(PoolConfig::new(bs, Codec::Gzip(6)).accounting_only());
    for img in corpus.iter() {
        let cache = img.cache();
        pool.import_file(&format!("c-{}", img.id()), cache.blocks(bs), cache.bytes());
    }
    let pool_physical = pool.stats().physical_bytes;

    let result = CcrAblation {
        block_size: bs,
        logical_bytes: logical,
        dedup_only_bytes: dedup_only,
        compress_only_bytes: compress_only,
        both_bytes: both,
    };
    let mut t = Table::new(&["configuration", "bytes_mib", "ratio_vs_raw"]);
    let rows: [(&str, u64); 4] = [
        ("raw (nonzero)", logical),
        ("dedup only", dedup_only),
        ("gzip-6 only", compress_only),
        ("dedup + gzip-6", both),
    ];
    for (name, v) in rows {
        t.push(vec![
            name.to_string(),
            mib(v as f64),
            fmt_f(logical as f64 / v.max(1) as f64),
        ]);
    }
    t.push(vec![
        "dedup + gzip-6 (pool-measured)".to_string(),
        mib(pool_physical as f64),
        fmt_f(logical as f64 / pool_physical.max(1) as f64),
    ]);
    t.print(&format!("Ablation: CCR decomposition at {} KiB", bs / 1024));
    t.write(&cfg.out_dir, "ablation_ccr").expect("csv");
    result
}

/// One row of the partial-hoarding ablation.
#[derive(Clone, Copy, Debug)]
pub struct HoardPoint {
    /// Fraction of the catalog hoarded per node (1.0 = Squirrel).
    pub hoard_fraction: f64,
    /// Fraction of boots that went cold.
    pub cold_fraction: f64,
    /// Compute-node rx bytes during the boot storm.
    pub compute_rx_bytes: u64,
}

/// Partial hoarding: the traditional capacity-limited alternative (keep
/// only some caches per node, replacement-policy style) that the paper's
/// fully replicated design argues against. Each node keeps the most
/// *popular* caches; boots draw images Zipf-popular, so the kept set is the
/// best case for a replacement policy — and still loses.
pub fn run_ablation_hoard(cfg: &ExperimentConfig) -> Vec<HoardPoint> {
    let corpus = cfg.corpus();
    let nodes = 8u32;
    let n = corpus.len().min(32) as u32;
    let boots_per_node = 12u32;
    let mut out = Vec::new();
    let mut t = Table::new(&["hoard_fraction", "cold_boots_pct", "compute_rx_mib"]);
    for &frac in &[1.0f64, 0.5, 0.25] {
        let mut sq = Squirrel::new(
            SquirrelConfig::builder()
                .compute_nodes(nodes)
                .storage_nodes(4)
                .link(LinkKind::GbE)
                .build(),
            Arc::clone(&corpus),
        );
        for img in 0..n {
            sq.register(img).expect("register");
        }
        // Capacity limit: evict all but the most popular `keep` caches.
        // Popularity rank == image id here (boots below draw low ids most).
        let keep = ((n as f64 * frac).ceil() as u32).max(1);
        for node in 0..nodes {
            for img in keep..n {
                let _ = sq.evict_cache(node, img).expect("evict");
            }
        }
        sq.network_mut().reset_ledgers();
        let mut cold = 0u32;
        let mut total = 0u32;
        for node in 0..nodes {
            for b in 0..boots_per_node {
                // Zipf-ish popularity: quadratic skew toward low image ids.
                let u = ((node * 131 + b * 17 + 7) % 100) as f64 / 100.0;
                let img = ((u * u * n as f64) as u32).min(n - 1);
                let outc = sq.boot(node, img).expect("boot");
                cold += (!outc.warm) as u32;
                total += 1;
            }
        }
        let point = HoardPoint {
            hoard_fraction: frac,
            cold_fraction: cold as f64 / total as f64,
            compute_rx_bytes: sq.network().compute_rx_total(),
        };
        t.push(vec![
            format!("{frac:.2}"),
            format!("{:.1}", point.cold_fraction * 100.0),
            mib(point.compute_rx_bytes as f64),
        ]);
        out.push(point);
    }
    t.print("Ablation: partial hoarding (replacement policy) vs full replication");
    t.write(&cfg.out_dir, "ablation_hoard").expect("csv");
    out
}

/// One row of the fixed-vs-CDC chunking ablation.
#[derive(Clone, Copy, Debug)]
pub struct ChunkingPoint {
    pub target_bytes: usize,
    pub fixed_dedup: f64,
    pub cdc_dedup: f64,
    pub cdc_mean_chunk: f64,
}

/// Fixed-size vs content-defined chunking on the cache corpus — the claim
/// (Jin & Miller, cited in the paper's related work) that justifies running
/// on ZFS's fixed records in the first place.
pub fn run_ablation_chunking(cfg: &ExperimentConfig) -> Vec<ChunkingPoint> {
    use squirrel_dataset::cdc::{cdc_dedup_caches, fixed_dedup_caches, CdcParams};
    let corpus = cfg.corpus();
    let mut out = Vec::new();
    let mut t = Table::new(&[
        "target_kb",
        "fixed_dedup",
        "cdc_dedup",
        "cdc_mean_chunk_kb",
    ]);
    for &target in &[4096usize, 16384, 65536] {
        let fixed = fixed_dedup_caches(&corpus, target);
        let cdc = cdc_dedup_caches(&corpus, &CdcParams::with_average(target));
        let p = ChunkingPoint {
            target_bytes: target,
            fixed_dedup: fixed.dedup_ratio(),
            cdc_dedup: cdc.dedup_ratio(),
            cdc_mean_chunk: cdc.mean_chunk_bytes,
        };
        t.push(vec![
            (target / 1024).to_string(),
            fmt_f(p.fixed_dedup),
            fmt_f(p.cdc_dedup),
            fmt_f(p.cdc_mean_chunk / 1024.0),
        ]);
        out.push(p);
    }
    t.print("Ablation: fixed-size vs content-defined chunking (cache dedup ratio)");
    t.write(&cfg.out_dir, "ablation_chunking").expect("csv");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_ablation_rows_sane() {
        let cfg = ExperimentConfig { out_dir: None, ..ExperimentConfig::smoke() };
        let pts = run_ablation_chunking(&cfg);
        assert_eq!(pts.len(), 3);
        for p in pts {
            assert!(p.fixed_dedup >= 1.0);
            assert!(p.cdc_dedup >= 1.0);
        }
    }

    #[test]
    fn multicast_diff_cheaper_than_rsync() {
        let cfg = ExperimentConfig::smoke();
        let a = run_ablation_sync(&ExperimentConfig { out_dir: None, ..cfg });
        assert!(
            a.diff_multicast_tx < a.rsync_full_tx,
            "{} vs {}",
            a.diff_multicast_tx,
            a.rsync_full_tx
        );
    }

    #[test]
    fn full_hoarding_has_zero_cold_boots() {
        let cfg = ExperimentConfig::smoke();
        let pts = run_ablation_hoard(&ExperimentConfig { out_dir: None, ..cfg });
        let full = pts.iter().find(|p| p.hoard_fraction == 1.0).expect("full row");
        let quarter = pts.iter().find(|p| p.hoard_fraction == 0.25).expect("quarter row");
        assert_eq!(full.cold_fraction, 0.0);
        assert_eq!(full.compute_rx_bytes, 0);
        assert!(quarter.cold_fraction > 0.0);
        assert!(quarter.compute_rx_bytes > 0);
    }

    #[test]
    fn combined_beats_each_alone() {
        let cfg = ExperimentConfig::smoke();
        let a = run_ablation_ccr(&ExperimentConfig { out_dir: None, ..cfg }, 16384);
        assert!(a.both_bytes < a.dedup_only_bytes);
        assert!(a.both_bytes < a.compress_only_bytes);
        assert!(a.dedup_only_bytes < a.logical_bytes);
        assert!(a.compress_only_bytes < a.logical_bytes);
    }
}
