//! Fixed log2-bucket histograms over `u64` samples.
//!
//! Bucket `i >= 1` spans `2^(i-1) ..= 2^i - 1` (values of bit length `i`);
//! bucket 0 holds zeros. The bucket layout is fixed at compile time so two
//! histograms fed the same samples in any order produce identical
//! snapshots — the property the registry's determinism contract needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// 65 buckets: one per bit length 0..=64.
pub(crate) const BUCKETS: usize = 65;

/// Bucket index of a sample: its bit length (0 for the value 0).
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `idx` (`0`, `2^idx - 1`, or `u64::MAX`).
pub fn bucket_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        1..=63 => (1u64 << idx) - 1,
        _ => u64::MAX,
    }
}

/// Lock-free histogram cell shared between handles.
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub(crate) fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time histogram contents: total count/sum plus the non-empty
/// buckets as `(bucket index, count)` pairs in ascending index order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_bound(idx)), idx, "idx={idx}");
        }
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn observe_fills_expected_buckets() {
        let h = AtomicHistogram::new();
        for v in [0, 1, 2, 3, 1023, 1024] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2053);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1), (11, 1)]);
        assert!((s.mean() - 2053.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_order_independent() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let samples = [5u64, 900, 0, 77, 5, 1 << 40];
        for v in samples {
            a.observe(v);
        }
        for v in samples.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
