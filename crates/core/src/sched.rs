//! Discrete-event scheduler core.
//!
//! A minimal, fully deterministic event queue: a binary heap ordered by
//! `(time_ms, seq)` where `seq` is a monotonic insertion counter. Two events
//! at the same simulated instant therefore fire in the order they were
//! scheduled — the tie-break is part of the contract, not an accident of
//! heap layout. Nothing here consults wall clocks or ambient randomness;
//! simulated time is whatever the driver pushes.
//!
//! The queue is the substrate of [`crate::fleet`]'s long-horizon soak, but
//! it is deliberately payload-generic so boot-storm scripts, chaos drivers
//! or future `bootsim`/`cluster` schedulers can reuse it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One event popped from the queue: when it was scheduled to fire, its
/// insertion sequence number, and the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Simulated fire time, in milliseconds.
    pub time_ms: u64,
    /// Monotonic insertion counter — the deterministic tie-break.
    pub seq: u64,
    pub event: E,
}

/// Heap entry. Ordering reads *only* `(time_ms, seq)`: the payload never
/// participates, so `E` needs no `Ord` bound and equal-time events pop in
/// insertion order.
struct Entry<E> {
    time_ms: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time_ms, self.seq) == (other.time_ms, other.seq)
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ms, self.seq).cmp(&(other.time_ms, other.seq))
    }
}

/// Deterministic discrete-event queue over payloads of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` at simulated `time_ms`. Returns the sequence number
    /// assigned (useful for logging / debugging schedules).
    pub fn push(&mut self, time_ms: u64, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time_ms, seq, event }));
        seq
    }

    /// Pop the next event: smallest `time_ms`, ties by insertion order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|Reverse(e)| Scheduled {
            time_ms: e.time_ms,
            seq: e.seq,
            event: e.event,
        })
    }

    /// Fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time_ms)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(5, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_the_tie_break() {
        let mut q = EventQueue::new();
        q.push(2, "late-1");
        q.push(1, "early");
        assert_eq!(q.pop().unwrap().event, "early");
        // Pushed after a pop but at the same time as late-1: fires second.
        q.push(2, "late-2");
        assert_eq!(q.pop().unwrap().event, "late-1");
        assert_eq!(q.pop().unwrap().event, "late-2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(3, ());
        assert_eq!(q.peek_time(), Some(3));
        let s = q.pop().unwrap();
        assert_eq!(s.time_ms, 3);
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn seq_numbers_are_monotonic_across_pops() {
        let mut q = EventQueue::new();
        let a = q.push(1, ());
        q.pop();
        let b = q.push(1, ());
        assert!(b > a, "seq survives pops: {a} then {b}");
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
