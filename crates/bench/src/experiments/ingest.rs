//! Ingest bench: the staged parallel import (`ZPool::import_file_parallel`)
//! versus the serial `write_block` replay, swept over worker-thread counts.
//!
//! The workload is a deterministic mix of unique, duplicate, and zero
//! blocks cut from a generated corpus image, sized well past the old
//! micro-bench (default 512 x 64 KiB) so the pipeline's fixed costs
//! amortize the way a real cache ingest does. Each thread count runs on a
//! persistent [`WorkerPool`] shared across repeats — the production shape:
//! `Squirrel` spawns its workers once and every ingest reuses them.
//!
//! Beyond throughput, the run records a per-stage wall-clock breakdown
//! (`prepare_ns` / `probe_ns` / `compress_ns` / `commit_ns`, from the
//! journal-quiet stage timers) and enforces two contracts:
//!
//! * **Determinism** — pool space stats and the metric snapshot are
//!   bit-identical to the serial import at every thread count (the run
//!   aborts otherwise).
//! * **Never slower** — `speedup_vs_serial` must be >= 0.95 at threads 2
//!   and 8; the JSON carries `"speedup_gate": "pass"`/`"fail"` and CI
//!   greps for the pass marker.
//!
//! Results land in `results/BENCH_ingest.json`. Absolute speedup is
//! hardware-dependent (a single-core container shows ~1.0x); the gate only
//! asserts the parallel path never loses to serial.

use crate::config::ExperimentConfig;
use crate::csvout::fmt_f;
use squirrel_compress::Codec;
use squirrel_dataset::{Corpus, CorpusConfig};
use squirrel_hash::par::WorkerPool;
use squirrel_obs::{MetricsRegistry, MetricsSnapshot};
use squirrel_zfs::{PoolConfig, SpaceStats, ZPool};

/// Default workload shape: 512 blocks of 64 KiB (32 MiB logical).
pub const INGEST_BLOCKS: usize = 512;
pub const INGEST_BLOCK_SIZE: usize = 64 * 1024;
/// Percent of blocks that duplicate an earlier unique / are all-zero.
pub const DEDUP_PCT: u32 = 25;
pub const ZERO_PCT: u32 = 12;

/// Wall-clock nanoseconds per pipeline stage, from the pool's
/// journal-quiet stage timers.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseNanos {
    pub prepare_ns: u64,
    pub probe_ns: u64,
    pub compress_ns: u64,
    pub commit_ns: u64,
}

/// One thread count's measurement.
#[derive(Clone, Debug)]
pub struct IngestRun {
    pub threads: usize,
    /// Best-of-`repeat` wall seconds for one whole import.
    pub wall_secs: f64,
    pub blocks_per_sec: f64,
    pub speedup_vs_serial: f64,
    /// Stage breakdown of the best repeat.
    pub phases: PhaseNanos,
}

/// The deterministic block mix: uniques from the corpus image, every
/// `100/dedup_pct`-th block a repeat of an earlier unique, every
/// `100/zero_pct`-th all zeros. Returns the blocks plus the
/// (unique, duplicate, zero) census.
pub fn build_workload(
    n_blocks: usize,
    bs: usize,
    dedup_pct: u32,
    zero_pct: u32,
    seed: u64,
) -> (Vec<Vec<u8>>, (usize, usize, usize)) {
    let corpus = Corpus::generate(CorpusConfig::test_corpus(4, seed));
    let img = corpus.image(0);
    let virt = img.virtual_bytes().max(1);
    let dedup_every = (100 / dedup_pct.clamp(1, 100)) as usize;
    let zero_every = (100 / zero_pct.clamp(1, 100)) as usize;
    let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(n_blocks);
    let mut uniques: Vec<usize> = Vec::new();
    let (mut n_unique, mut n_dup, mut n_zero) = (0usize, 0usize, 0usize);
    for i in 0..n_blocks {
        if i % zero_every == zero_every - 1 {
            blocks.push(vec![0u8; bs]);
            n_zero += 1;
        } else if i % dedup_every == dedup_every - 1 && !uniques.is_empty() {
            // Repeat an earlier unique, walking the list so hits spread
            // over the DDT shards instead of hammering one entry.
            let src = uniques[n_dup % uniques.len()];
            blocks.push(blocks[src].clone());
            n_dup += 1;
        } else {
            let mut buf = vec![0u8; bs];
            // Stride by a prime so consecutive uniques come from distant
            // image regions (mixed texture, like a real cache capture).
            let off = (i as u64).wrapping_mul(2_097_169) % virt;
            img.read_at(off, &mut buf);
            // Stamp the index so wrapped reads stay unique.
            buf[..8].copy_from_slice(&(i as u64).to_le_bytes());
            uniques.push(blocks.len());
            blocks.push(buf);
            n_unique += 1;
        }
    }
    (blocks, (n_unique, n_dup, n_zero))
}

/// The determinism fingerprint: everything the contract pins.
fn fingerprint(pool: &ZPool, reg: &MetricsRegistry) -> (SpaceStats, MetricsSnapshot) {
    (pool.stats(), reg.snapshot())
}

fn phase_nanos(reg: &MetricsRegistry) -> PhaseNanos {
    let mut p = PhaseNanos::default();
    for (name, stats) in reg.wall_times() {
        match name.as_str() {
            "zpool_ingest_prepare" => p.prepare_ns = stats.total_nanos,
            "zpool_ingest_probe" => p.probe_ns = stats.total_nanos,
            "zpool_ingest_compress" => p.compress_ns = stats.total_nanos,
            "zpool_ingest_commit" => p.commit_ns = stats.total_nanos,
            _ => {}
        }
    }
    p
}

/// Sweep thread counts against the serial baseline, verify determinism,
/// enforce the speedup gate, and persist `BENCH_ingest.json`.
pub fn run_ingest(cfg: &ExperimentConfig, n_blocks: usize, repeat: usize) -> Vec<IngestRun> {
    let bs = INGEST_BLOCK_SIZE;
    let codec = Codec::Gzip(6);
    let (blocks, (n_unique, n_dup, n_zero)) =
        build_workload(n_blocks, bs, DEDUP_PCT, ZERO_PCT, cfg.seed);
    let logical = (n_blocks * bs) as u64;
    let repeat = repeat.max(1);

    // Serial baseline: the write_block replay path.
    let mut serial_secs = f64::INFINITY;
    let mut serial_print = None;
    for _ in 0..repeat {
        let reg = MetricsRegistry::new();
        let mut pool = ZPool::new(PoolConfig::new(bs, codec));
        pool.set_metrics(&reg.handle());
        let t = std::time::Instant::now();
        pool.import_file("f", blocks.iter().cloned(), logical);
        serial_secs = serial_secs.min(t.elapsed().as_secs_f64());
        serial_print.get_or_insert_with(|| fingerprint(&pool, &reg));
    }
    let serial_print = serial_print.expect("at least one serial repeat");
    let serial_rate = n_blocks as f64 / serial_secs;

    let mut runs = Vec::new();
    for threads in super::bootstorm::thread_sweep(cfg) {
        // One persistent pool per thread count, shared across repeats —
        // workers spawn on the warm-up import and are reused after, the
        // way a long-lived system ingests.
        let workers = WorkerPool::new(threads);
        let make_pool = |w: &WorkerPool| {
            let mut pool = ZPool::new(PoolConfig::new(bs, codec).with_threads(threads));
            pool.set_worker_pool(w.clone());
            pool
        };
        let mut warm = make_pool(&workers);
        warm.import_file_parallel("f", &blocks, logical);

        let mut wall = f64::INFINITY;
        let mut phases = PhaseNanos::default();
        let mut print = None;
        for _ in 0..repeat {
            let reg = MetricsRegistry::new();
            let mut pool = make_pool(&workers);
            pool.set_metrics(&reg.handle());
            let t = std::time::Instant::now();
            pool.import_file_parallel("f", &blocks, logical);
            let secs = t.elapsed().as_secs_f64();
            if secs < wall {
                wall = secs;
                phases = phase_nanos(&reg);
            }
            print.get_or_insert_with(|| fingerprint(&pool, &reg));
        }

        // The determinism contract, enforced: the parallel import leaves
        // the same pool state and metric snapshot as the serial replay.
        let print = print.expect("at least one parallel repeat");
        assert_eq!(print.0, serial_print.0, "threads={threads} diverged from serial stats");
        assert_eq!(print.1, serial_print.1, "threads={threads} diverged from serial metrics");

        runs.push(IngestRun {
            threads,
            wall_secs: wall,
            blocks_per_sec: n_blocks as f64 / wall,
            speedup_vs_serial: serial_secs / wall.max(1e-12),
            phases,
        });
    }

    // The perf gate: parallel is never slower than serial (tolerance 5%).
    let gate = runs
        .iter()
        .filter(|r| r.threads == 2 || r.threads == 8)
        .all(|r| r.speedup_vs_serial >= 0.95);
    let gate_word = if gate { "PASS" } else { "FAIL" };

    println!(
        "ingest workload: {n_blocks} x {bs} B ({n_unique} unique, {n_dup} dup, {n_zero} zero), \
         gzip-6, serial {serial_rate:.1} blocks/s"
    );
    for r in &runs {
        println!(
            "ingest threads={}: {:.1} blocks/s ({:.2}x serial), stages \
             prepare {:.2} ms / probe {:.2} ms / compress {:.2} ms / commit {:.2} ms",
            r.threads,
            r.blocks_per_sec,
            r.speedup_vs_serial,
            r.phases.prepare_ns as f64 / 1e6,
            r.phases.probe_ns as f64 / 1e6,
            r.phases.compress_ns as f64 / 1e6,
            r.phases.commit_ns as f64 / 1e6,
        );
    }
    println!("ingest speedup gate (>=0.95x at threads 2 and 8): {gate_word}");

    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = std::path::Path::new(dir).join("BENCH_ingest.json");
        std::fs::write(&path, render_json(n_blocks, (n_unique, n_dup, n_zero), serial_rate, gate, &runs))
            .expect("write BENCH_ingest.json");
        println!("ingest bench written to {}", path.display());
    }
    runs
}

/// Hand-rolled JSON (the workspace is std-only by policy).
fn render_json(
    n_blocks: usize,
    census: (usize, usize, usize),
    serial_rate: f64,
    gate: bool,
    runs: &[IngestRun],
) -> String {
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"wall_secs\": {}, \"blocks_per_sec\": {}, \
                 \"speedup_vs_serial\": {}, \"prepare_ns\": {}, \"probe_ns\": {}, \
                 \"compress_ns\": {}, \"commit_ns\": {}}}",
                r.threads,
                fmt_f(r.wall_secs),
                fmt_f(r.blocks_per_sec),
                fmt_f(r.speedup_vs_serial),
                r.phases.prepare_ns,
                r.phases.probe_ns,
                r.phases.compress_ns,
                r.phases.commit_ns,
            )
        })
        .collect();
    format!(
        "{{\n  \"block_size\": {INGEST_BLOCK_SIZE},\n  \"blocks\": {n_blocks},\n  \
         \"unique_blocks\": {},\n  \"dup_blocks\": {},\n  \"zero_blocks\": {},\n  \
         \"codec\": \"gzip-6\",\n  \"serial_blocks_per_sec\": {},\n  \
         \"deterministic_across_threads\": true,\n  \"speedup_gate\": \"{}\",\n  \
         \"note\": \"speedup is hardware-dependent; the gate only asserts parallel \
         never loses to serial\",\n  \"parallel\": [\n{}\n  ]\n}}\n",
        census.0,
        census.1,
        census.2,
        fmt_f(serial_rate),
        if gate { "pass" } else { "fail" },
        entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_census_adds_up_and_is_deterministic() {
        let (blocks, (u, d, z)) = build_workload(96, 4096, DEDUP_PCT, ZERO_PCT, 7);
        assert_eq!(blocks.len(), 96);
        assert_eq!(u + d + z, 96);
        assert!(u > 0 && d > 0 && z > 0, "mix must include all three kinds");
        let (again, census) = build_workload(96, 4096, DEDUP_PCT, ZERO_PCT, 7);
        assert_eq!(blocks, again, "workload must be seed-deterministic");
        assert_eq!(census, (u, d, z));
        // Zero blocks really are zero; duplicates really repeat.
        assert!(blocks.iter().any(|b| b.iter().all(|&x| x == 0)));
    }

    #[test]
    fn ingest_sweep_is_deterministic_with_phase_breakdown() {
        let cfg = ExperimentConfig::smoke();
        // Tiny workload: the run itself asserts state/metric equality
        // against serial at every thread count.
        let runs = run_ingest(&cfg, 48, 1);
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.blocks_per_sec > 0.0);
            // The pipeline ran: every stage recorded wall time.
            assert!(r.phases.prepare_ns > 0, "threads={}", r.threads);
            assert!(r.phases.commit_ns > 0, "threads={}", r.threads);
        }
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let runs = vec![IngestRun {
            threads: 2,
            wall_secs: 0.5,
            blocks_per_sec: 100.0,
            speedup_vs_serial: 1.1,
            phases: PhaseNanos { prepare_ns: 1, probe_ns: 2, compress_ns: 3, commit_ns: 4 },
        }];
        let json = render_json(50, (30, 10, 10), 90.0, true, &runs);
        for key in [
            "\"serial_blocks_per_sec\"",
            "\"speedup_vs_serial\"",
            "\"prepare_ns\"",
            "\"probe_ns\"",
            "\"compress_ns\"",
            "\"commit_ns\"",
            "\"speedup_gate\": \"pass\"",
            "\"deterministic_across_threads\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
