//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 4), plus the ablations DESIGN.md calls out.
//!
//! Each experiment is a library function returning structured rows (so the
//! integration tests can assert shapes) and printing the same series the
//! paper plots; the `squirrel-experiments` binary dispatches subcommands to
//! them and writes CSVs under `results/`.
//!
//! Scaling convention: corpora run at a byte-volume divisor
//! (`ExperimentConfig::scale`); every printed byte quantity is reported both
//! as measured and as the `x scale` paper-volume projection (ratios are
//! scale-free by construction of the dataset).

pub mod config;
pub mod csvout;
pub mod experiments;

pub use config::ExperimentConfig;
