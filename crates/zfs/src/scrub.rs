//! Pool scrubbing: ZFS's end-to-end integrity walk.
//!
//! Every stored record is decompressed and re-hashed; a mismatch between
//! the recomputed digest and the record's content-address key means the
//! stored bytes no longer are what the dedup table says they are (bit rot,
//! torn write, or a buggy codec). Squirrel inherits this for free by
//! running on a checksumming store — replicated ccVolumes make repair as
//! easy as re-fetching from any peer.

use crate::ddt::{BlockKey, SharedPayload};
use crate::pool::ZPool;
use squirrel_compress::{compress, decompress};
use squirrel_hash::ContentHash;

/// Result of one scrub pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct ScrubReport {
    /// Unique records examined.
    pub blocks_checked: u64,
    /// Bytes decompressed and hashed.
    pub bytes_verified: u64,
    /// Records whose content no longer matches their key.
    pub corrupt: Vec<BlockKey>,
}

impl ScrubReport {
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

impl ZPool {
    /// Walk every unique record, decompress it, and verify its digest
    /// matches its dedup key. Requires a data-retaining pool.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (key, entry) in self.ddt().iter() {
            let frame = entry
                .data
                .as_ref()
                .expect("scrub requires a data-retaining pool");
            let data = decompress(frame, entry.lsize as usize);
            report.blocks_checked += 1;
            report.bytes_verified += data.len() as u64;
            if ContentHash::of(&data).short() != *key {
                report.corrupt.push(*key);
            }
        }
        report.corrupt.sort_unstable();
        self.meters.scrub_blocks.add(report.blocks_checked);
        self.meters.scrub_bytes.add(report.bytes_verified);
        report
    }

    /// Fault hook: overwrite the stored payload of `key` with a validly
    /// framed record of *different* content, simulating silent on-disk
    /// corruption that only a checksum walk can catch. Space accounting
    /// follows the garbage record's size, as it would on a real disk.
    /// Returns `false` if the key is not present.
    pub fn inject_corruption(&mut self, key: BlockKey) -> bool {
        let Some(entry) = self.ddt().get(&key) else {
            return false;
        };
        // Garbage of the record's own logical size so the scrub walk
        // decompresses it at the right length (CDC records vary).
        let lsize = entry.lsize as usize;
        // Deterministic garbage derived from the key.
        let mut garbage = vec![0u8; lsize];
        for (i, b) in garbage.iter_mut().enumerate() {
            *b = (key as u8).wrapping_add(i as u8).wrapping_mul(31) | 1;
        }
        let frame = compress(self.config().codec, &garbage);
        self.ddt_mut()
            .replace_payload(key, frame.len() as u32, Some(frame.into()))
    }

    /// Fault hook: corrupt the `nth` unique block in key order (mod the
    /// block count, so any `u64` picks a victim deterministically). Returns
    /// the corrupted key, or `None` for an empty pool.
    pub fn corrupt_nth_block(&mut self, nth: u64) -> Option<BlockKey> {
        let mut keys: Vec<BlockKey> = self.ddt().iter().map(|(k, _)| *k).collect();
        if keys.is_empty() {
            return None;
        }
        keys.sort_unstable();
        let key = keys[(nth % keys.len() as u64) as usize];
        self.inject_corruption(key).then_some(key)
    }

    /// The stored compressed record of `key`: `(psize, frame)`. `None` when
    /// the key is absent or the pool is accounting-only. This is what a
    /// repair peer serves to a node whose copy of the block rotted.
    pub fn payload_of(&self, key: BlockKey) -> Option<(u32, SharedPayload)> {
        let e = self.ddt().get(&key)?;
        Some((e.psize, e.data.clone()?))
    }

    /// Install a replacement payload for a corrupted block, verifying first
    /// that the decompressed content actually hashes to `key` — a repair
    /// source that is itself corrupt is rejected. Returns `true` when the
    /// block was repaired.
    pub fn repair_block(&mut self, key: BlockKey, psize: u32, frame: &SharedPayload) -> bool {
        let Some(entry) = self.ddt().get(&key) else {
            return false;
        };
        let data = decompress(frame, entry.lsize as usize);
        if ContentHash::of(&data).short() != key {
            return false;
        }
        self.ddt_mut().replace_payload(key, psize, Some(frame.clone()))
    }

    /// Is every nonzero block of `name` intact (stored bytes still hash to
    /// their key)? `None` when the file does not exist. The warm boot path
    /// runs this before trusting a local cache; it is a per-file slice of
    /// [`scrub`](Self::scrub).
    pub fn file_is_intact(&self, name: &str) -> Option<bool> {
        let table = self.files().get(name)?;
        for key in table.iter_keys() {
            let entry = self.ddt().get(&key).expect("dangling block pointer");
            let frame = entry.data.as_ref().expect("intact check requires data");
            if ContentHash::of(&decompress(frame, entry.lsize as usize)).short() != key {
                return Some(false);
            }
        }
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use squirrel_compress::Codec;

    fn pool_with_data() -> (ZPool, Vec<BlockKey>) {
        let mut p = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        p.create_file("f");
        for i in 0..6u8 {
            p.write_block("f", i as u64, &vec![i + 1; 512]);
        }
        let keys: Vec<BlockKey> = p
            .block_refs("f")
            .expect("file")
            .into_iter()
            .flatten()
            .map(|r| r.key)
            .collect();
        (p, keys)
    }

    #[test]
    fn clean_pool_scrubs_clean() {
        let (p, keys) = pool_with_data();
        let r = p.scrub();
        assert!(r.is_clean());
        assert_eq!(r.blocks_checked, keys.len() as u64);
        assert_eq!(r.bytes_verified, keys.len() as u64 * 512);
    }

    #[test]
    fn injected_corruption_is_found() {
        let (mut p, keys) = pool_with_data();
        assert!(p.inject_corruption(keys[2]));
        assert!(p.inject_corruption(keys[4]));
        let r = p.scrub();
        assert_eq!(r.corrupt.len(), 2);
        assert!(r.corrupt.contains(&keys[2]));
        assert!(r.corrupt.contains(&keys[4]));
    }

    #[test]
    fn inject_on_missing_key_is_noop() {
        let (mut p, _) = pool_with_data();
        assert!(!p.inject_corruption(0xdead_beef));
        assert!(p.scrub().is_clean());
    }

    #[test]
    fn corruption_keeps_physical_accounting_exact() {
        let (mut p, keys) = pool_with_data();
        p.inject_corruption(keys[1]);
        let recomputed: u64 = p.ddt().iter().map(|(_, e)| e.psize as u64).sum();
        assert_eq!(p.stats().physical_bytes, recomputed);
    }

    #[test]
    fn repair_restores_scrub_clean() {
        let (mut p, keys) = pool_with_data();
        let (psize, frame) = p.payload_of(keys[3]).expect("intact payload");
        assert!(p.inject_corruption(keys[3]));
        assert!(!p.scrub().is_clean());
        assert_eq!(p.file_is_intact("f"), Some(false));
        assert!(p.repair_block(keys[3], psize, &frame));
        assert!(p.scrub().is_clean());
        assert_eq!(p.file_is_intact("f"), Some(true));
        assert_eq!(p.read_block("f", 3).expect("file"), vec![4u8; 512]);
    }

    #[test]
    fn repair_rejects_corrupt_source() {
        let (mut p, keys) = pool_with_data();
        let mut donor = {
            let (d, _) = pool_with_data();
            d
        };
        donor.inject_corruption(keys[0]);
        let (psize, bad_frame) = donor.payload_of(keys[0]).expect("payload");
        p.inject_corruption(keys[0]);
        assert!(
            !p.repair_block(keys[0], psize, &bad_frame),
            "a corrupt donor must not be installed"
        );
        assert!(!p.scrub().is_clean(), "victim still corrupt");
        // Unknown keys are refused too.
        assert!(!p.repair_block(0xdead_beef, psize, &bad_frame));
    }

    #[test]
    fn corrupt_nth_block_is_deterministic() {
        let (mut a, _) = pool_with_data();
        let (mut b, _) = pool_with_data();
        let ka = a.corrupt_nth_block(41).expect("victim");
        let kb = b.corrupt_nth_block(41).expect("victim");
        assert_eq!(ka, kb, "same nth picks the same key");
        assert_eq!(a.scrub().corrupt, vec![ka]);
        // nth wraps mod the block count.
        let (mut c, _) = pool_with_data();
        let n = c.ddt().len() as u64;
        assert_eq!(c.corrupt_nth_block(41 + 7 * n), Some(ka));
        // Empty pool has no victim.
        let mut empty = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        assert_eq!(empty.corrupt_nth_block(0), None);
    }

    #[test]
    fn file_is_intact_handles_holes_and_missing_files() {
        let (p, _) = pool_with_data();
        assert_eq!(p.file_is_intact("nope"), None);
        let mut holey = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        holey.create_file("h");
        holey.write_block("h", 2, &vec![0u8; 512]);
        assert_eq!(holey.file_is_intact("h"), Some(true), "holes are intact");
    }

    #[test]
    fn cdc_pool_scrubs_injects_and_repairs_at_chunk_lsize() {
        use crate::config::ChunkStrategy;
        use squirrel_hash::cdc::CdcParams;
        let bs = 512;
        let mut p = ZPool::new(
            PoolConfig::new(bs, Codec::Lzjb)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(1024))),
        );
        let blocks: Vec<Vec<u8>> = (0..12)
            .map(|i| (0..bs).map(|j| ((i * 29 + j * 7) % 249) as u8).collect())
            .collect();
        p.import_file_parallel("img", &blocks, 12 * bs as u64);
        assert!(p.scrub().is_clean(), "variable-size records verify at their lsize");
        assert_eq!(p.file_is_intact("img"), Some(true));

        let key = p.corrupt_nth_block(5).expect("victim chunk");
        assert_eq!(p.scrub().corrupt, vec![key]);
        assert_eq!(p.file_is_intact("img"), Some(false));

        let donor = {
            let mut d = ZPool::new(
                PoolConfig::new(bs, Codec::Lzjb)
                    .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(1024))),
            );
            d.import_file_parallel("img", &blocks, 12 * bs as u64);
            d
        };
        let (psize, frame) = donor.payload_of(key).expect("donor payload");
        assert!(p.repair_block(key, psize, &frame));
        assert!(p.scrub().is_clean());
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(p.read_block("img", i as u64).expect("file"), *b);
        }
    }

    #[test]
    fn recv_then_scrub_guards_the_propagation_path() {
        // A replica built purely from send streams must scrub clean; a
        // corrupted replica must not.
        let (mut src, keys) = pool_with_data();
        src.snapshot("s1");
        let mut dst = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        dst.recv(&src.send_between(None, "s1").expect("send")).expect("recv");
        assert!(dst.scrub().is_clean());
        dst.inject_corruption(keys[0]);
        assert_eq!(dst.scrub().corrupt, vec![keys[0]]);
    }
}
