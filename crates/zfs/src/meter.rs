//! Interned metric handles for the pool's hot paths.
//!
//! All pool metrics are counters and histograms (add-only, commutative), so
//! parallel ingestion commits and concurrent `recv` calls across replica
//! pools produce bit-identical registry snapshots at any thread count.
//! Series carry whatever labels the attached [`Metrics`] handle holds
//! (conventionally `pool="scvol"` / `pool="ccvol"`).

use squirrel_obs::{Counter, Histogram, Metrics};

pub(crate) struct PoolMeters {
    /// The attached handle itself, kept for stage timers
    /// ([`Metrics::timer`]) — journal-quiet wall-clock spans of the ingest
    /// pipeline stages.
    pub(crate) metrics: Metrics,
    pub(crate) ingest_blocks: Counter,
    pub(crate) ingest_bytes: Counter,
    pub(crate) zero_blocks: Counter,
    pub(crate) ddt_hits: Counter,
    pub(crate) ddt_misses: Counter,
    pub(crate) compress_in_bytes: Counter,
    pub(crate) compress_out_bytes: Counter,
    pub(crate) recv_streams: Counter,
    pub(crate) recv_wire_bytes: Counter,
    pub(crate) scrub_blocks: Counter,
    pub(crate) scrub_bytes: Counter,
    pub(crate) compressed_block_bytes: Histogram,
    /// Chunks emitted by the CDC prepare stage (zero chunks included).
    pub(crate) chunking_chunks: Counter,
    /// Logical bytes those chunks covered (mean chunk size =
    /// `chunk_bytes / chunks`).
    pub(crate) chunking_chunk_bytes: Counter,
    /// Distinct blocks relocated by reverse-dedup passes.
    pub(crate) reverse_extents_rewritten: Counter,
    /// Compressed bytes whose old physical copies became holes under
    /// reverse dedup.
    pub(crate) reverse_bytes_freed: Counter,
}

impl PoolMeters {
    pub(crate) fn new(m: &Metrics) -> Self {
        PoolMeters {
            metrics: m.clone(),
            ingest_blocks: m.counter("zpool_ingest_blocks_total"),
            ingest_bytes: m.counter("zpool_ingest_bytes_total"),
            zero_blocks: m.counter("zpool_zero_blocks_total"),
            ddt_hits: m.counter("zpool_ddt_hits_total"),
            ddt_misses: m.counter("zpool_ddt_misses_total"),
            compress_in_bytes: m.counter("zpool_compress_in_bytes_total"),
            compress_out_bytes: m.counter("zpool_compress_out_bytes_total"),
            recv_streams: m.counter("zpool_recv_streams_total"),
            recv_wire_bytes: m.counter("zpool_recv_wire_bytes_total"),
            scrub_blocks: m.counter("zpool_scrub_blocks_total"),
            scrub_bytes: m.counter("zpool_scrub_bytes_total"),
            compressed_block_bytes: m.histogram("zpool_compressed_block_bytes"),
            chunking_chunks: m.counter("squirrel_chunking_chunks_total"),
            chunking_chunk_bytes: m.counter("squirrel_chunking_chunk_bytes_total"),
            reverse_extents_rewritten: m.counter("squirrel_chunking_reverse_extents_rewritten_total"),
            reverse_bytes_freed: m.counter("squirrel_chunking_reverse_bytes_freed_total"),
        }
    }

    pub(crate) fn disabled() -> Self {
        Self::new(&Metrics::disabled())
    }
}
