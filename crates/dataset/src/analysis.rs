//! Corpus-level metrics: deduplication ratio, compression ratio, CCR, and
//! cross-similarity — the exact formulas of the paper's Section 2.2 / 4.3.1.
//!
//! These sweeps are the hot path of Figures 2–4 and 12: every nonzero block
//! of every image is hashed (and unique blocks compressed). Work fans out
//! across images on std scoped worker threads (`squirrel_hash::par`), then
//! per-worker partial maps merge into one; per the perf book, hot maps use
//! FNV keyed by 128-bit digest prefixes.

use crate::cache::CacheView;
use crate::corpus::{Corpus, ImageHandle};
use squirrel_compress::{compressed_len, Codec};
use squirrel_hash::{par, ContentHash, FnvHashMap};

/// Which content set to analyze: full images or their VMI caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentSet {
    Images,
    Caches,
}

/// Sampling control for the compression measurement. Dedup statistics are
/// always exact; per-block compression is measured on up to `max_blocks`
/// unique blocks (uniformly by digest, hence unbiased) because compressing
/// every unique block of a large sweep would dominate runtime.
#[derive(Clone, Copy, Debug)]
pub struct CompressionSampling {
    pub max_blocks: usize,
}

impl Default for CompressionSampling {
    fn default() -> Self {
        CompressionSampling { max_blocks: 1500 }
    }
}

/// Aggregate statistics of one (content set, block size) sweep.
#[derive(Clone, Debug)]
pub struct SweepStats {
    pub block_size: usize,
    /// |N|: nonzero blocks (with multiplicity).
    pub nonzero_blocks: u64,
    /// Actual nonzero bytes covered (tail blocks counted at true length).
    pub nonzero_byte_sum: u64,
    /// |U|: unique nonzero blocks.
    pub unique_blocks: u64,
    /// Actual bytes of unique blocks.
    pub unique_byte_sum: u64,
    /// Σ over unique blocks of times repeated across *different* images
    /// (0 when a block appears in a single image only).
    pub cross_repetitions: u64,
    /// Σ over images of per-image unique block counts.
    pub per_image_unique_sum: u64,
    /// Mean `compressed/original` over (sampled) unique blocks.
    pub mean_compressed_fraction: f64,
    /// Unique blocks whose compression was measured.
    pub compression_samples: u64,
}

impl SweepStats {
    /// Deduplication ratio |N| / |U| (paper, Section 2.2).
    pub fn dedup_ratio(&self) -> f64 {
        self.nonzero_blocks as f64 / self.unique_blocks.max(1) as f64
    }

    /// Content compression ratio: mean over unique blocks of
    /// `size / compressed_size` — the reciprocal of the stored fraction.
    pub fn compression_ratio(&self) -> f64 {
        1.0 / self.mean_compressed_fraction.max(1e-9)
    }

    /// Combined compression ratio = dedup × compression (paper, Section 2.2).
    pub fn ccr(&self) -> f64 {
        self.dedup_ratio() * self.compression_ratio()
    }

    /// Cross-similarity (paper, Section 4.3.1).
    pub fn cross_similarity(&self) -> f64 {
        self.cross_repetitions as f64 / self.per_image_unique_sum.max(1) as f64
    }

    /// Logical nonzero bytes (tail blocks counted at true length).
    pub fn nonzero_bytes(&self) -> u64 {
        self.nonzero_byte_sum
    }

    /// Bytes after dedup + compression (unique bytes at the mean ratio).
    pub fn deduped_compressed_bytes(&self) -> u64 {
        (self.unique_byte_sum as f64 * self.mean_compressed_fraction) as u64
    }
}

/// Per-unique-block record during the merge.
struct BlockInfo {
    /// Total occurrences (multiplicity).
    count: u64,
    /// Actual byte length (tail blocks are shorter than the block size).
    bytes: u32,
    /// Distinct images containing the block.
    image_count: u32,
    /// Last image id that counted this block (dedup of per-image counting).
    last_image: u32,
    /// Compressed fraction if sampled, else NaN.
    fraction: f32,
}

/// Run a full sweep of `set` at `block_size` under `codec`.
///
/// `threads` caps the worker count (0 = all available parallelism).
pub fn sweep(
    corpus: &Corpus,
    set: ContentSet,
    block_size: usize,
    codec: Codec,
    sampling: CompressionSampling,
    threads: usize,
) -> SweepStats {
    let n_workers = par::resolve_threads(threads).min(corpus.len().max(1));

    // Each worker consumes images round-robin and builds a partial map from
    // digest prefix to (count, images, sampled compression fraction).
    // Partials merge in worker order, so results match the serial pass.
    let results: Vec<WorkerResult> = par::run_workers(n_workers, |w| {
        worker_pass(corpus, set, block_size, codec, sampling, w, n_workers)
    });

    merge(block_size, results, sampling)
}

struct WorkerResult {
    map: FnvHashMap<u128, BlockInfo>,
    nonzero_blocks: u64,
    nonzero_byte_sum: u64,
}

fn worker_pass(
    corpus: &Corpus,
    set: ContentSet,
    block_size: usize,
    codec: Codec,
    sampling: CompressionSampling,
    worker: usize,
    n_workers: usize,
) -> WorkerResult {
    let mut map: FnvHashMap<u128, BlockInfo> = FnvHashMap::default();
    let mut nonzero_blocks = 0u64;
    let mut nonzero_byte_sum = 0u64;
    // Deterministic sampling: a digest-derived coin picks an unbiased subset
    // of unique blocks for compression measurement. A per-worker floor keeps
    // the estimate meaningful when the unique set is tiny (large blocks on
    // scaled corpora would otherwise sample nothing).
    let sample_all = sampling.max_blocks == usize::MAX;
    let mut sampled = 0usize;
    const SAMPLE_FLOOR: usize = 24;

    for (i, img) in corpus.iter().enumerate() {
        if i % n_workers != worker {
            continue;
        }
        let image_id = img.id();
        let mut per_block = |block: Vec<u8>| {
            if block.is_empty() || squirrel_hash::is_zero_block(&block) {
                return; // sparse: zero blocks are not "nonzero blocks"
            }
            nonzero_blocks += 1;
            nonzero_byte_sum += block.len() as u64;
            let h = ContentHash::of(&block).short();
            let entry = map.entry(h).or_insert_with(|| BlockInfo {
                count: 0,
                bytes: block.len() as u32,
                image_count: 0,
                last_image: u32::MAX,
                fraction: f32::NAN,
            });
            entry.count += 1;
            if entry.last_image != image_id {
                entry.last_image = image_id;
                entry.image_count += 1;
            }
            if entry.fraction.is_nan()
                && entry.count == 1
                && (sample_all || sampled < SAMPLE_FLOOR || want_sample(h))
            {
                entry.fraction =
                    (compressed_len(codec, &block) as f64 / block.len() as f64) as f32;
                sampled += 1;
            }
        };
        match set {
            ContentSet::Images => {
                for block in img.blocks_trimmed(block_size) {
                    per_block(block);
                }
            }
            ContentSet::Caches => {
                let cache = img.cache();
                for block in cache.blocks_trimmed(block_size) {
                    per_block(block);
                }
            }
        }
    }
    WorkerResult { map, nonzero_blocks, nonzero_byte_sum }
}

/// Digest-based coin: ~1/16 of unique blocks are pre-sampled; the merge trims
/// to `max_blocks`. Keeps sampling deterministic and image-order-free.
#[inline]
fn want_sample(h: u128) -> bool {
    ((h >> 64) as u64).is_multiple_of(16)
}

fn merge(block_size: usize, results: Vec<WorkerResult>, sampling: CompressionSampling) -> SweepStats {
    let mut map: FnvHashMap<u128, BlockInfo> = FnvHashMap::default();
    let mut nonzero_blocks = 0u64;
    let mut nonzero_byte_sum = 0u64;
    for r in results {
        nonzero_blocks += r.nonzero_blocks;
        nonzero_byte_sum += r.nonzero_byte_sum;
        for (h, info) in r.map {
            match map.entry(h) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(info);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let e = o.get_mut();
                    e.count += info.count;
                    // Workers partition by image, so distinct-image counts add.
                    e.image_count += info.image_count;
                    if e.fraction.is_nan() {
                        e.fraction = info.fraction;
                    }
                }
            }
        }
    }

    let unique_blocks = map.len() as u64;
    let mut unique_byte_sum = 0u64;
    let mut cross_repetitions = 0u64;
    let mut per_image_unique_sum = 0u64;
    let mut frac_sum = 0.0f64;
    let mut frac_n = 0u64;
    for info in map.values() {
        unique_byte_sum += info.bytes as u64;
        per_image_unique_sum += info.image_count as u64;
        if info.image_count >= 2 {
            cross_repetitions += info.image_count as u64;
        }
        if !info.fraction.is_nan() && frac_n < sampling.max_blocks as u64 {
            frac_sum += info.fraction as f64;
            frac_n += 1;
        }
    }
    // Fallback: tiny corpora may sample nothing via the digest coin.
    let mean_compressed_fraction = if frac_n > 0 { frac_sum / frac_n as f64 } else { 1.0 };

    SweepStats {
        block_size,
        nonzero_blocks,
        nonzero_byte_sum,
        unique_blocks,
        unique_byte_sum,
        cross_repetitions,
        per_image_unique_sum,
        mean_compressed_fraction,
        compression_samples: frac_n,
    }
}

/// Convenience: cache of `img` as an owned list of blocks (used by tests and
/// the Squirrel register path).
pub fn cache_blocks(cache: &CacheView<'_>, block_size: usize) -> Vec<Vec<u8>> {
    cache.blocks(block_size).collect()
}

/// Convenience full-accuracy sweep for small test corpora.
pub fn sweep_exact(corpus: &Corpus, set: ContentSet, block_size: usize, codec: Codec) -> SweepStats {
    sweep(corpus, set, block_size, codec, CompressionSampling { max_blocks: usize::MAX }, 0)
}

/// Helper used by several tests/experiments: run [`sweep`] over many block
/// sizes.
pub fn sweep_block_sizes(
    corpus: &Corpus,
    set: ContentSet,
    block_sizes: &[usize],
    codec: Codec,
    sampling: CompressionSampling,
) -> Vec<SweepStats> {
    block_sizes.iter().map(|&bs| sweep(corpus, set, bs, codec, sampling, 0)).collect()
}

#[allow(dead_code)]
fn image_handle_id(img: &ImageHandle<'_>) -> u32 {
    img.id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::test_corpus(16, 31))
    }

    #[test]
    fn dedup_ratio_at_least_one() {
        let c = corpus();
        let s = sweep_exact(&c, ContentSet::Caches, 4096, Codec::Off);
        assert!(s.dedup_ratio() >= 1.0);
        assert!(s.unique_blocks <= s.nonzero_blocks);
    }

    #[test]
    fn caches_dedup_better_than_images() {
        let c = corpus();
        let imgs = sweep_exact(&c, ContentSet::Images, 8192, Codec::Off);
        let caches = sweep_exact(&c, ContentSet::Caches, 8192, Codec::Off);
        assert!(
            caches.dedup_ratio() > imgs.dedup_ratio(),
            "caches {} vs images {}",
            caches.dedup_ratio(),
            imgs.dedup_ratio()
        );
    }

    #[test]
    fn caches_cross_similarity_higher_than_images() {
        // The paper's core scalability claim (Figure 12).
        let c = corpus();
        let imgs = sweep_exact(&c, ContentSet::Images, 8192, Codec::Off);
        let caches = sweep_exact(&c, ContentSet::Caches, 8192, Codec::Off);
        assert!(
            caches.cross_similarity() > 1.5 * imgs.cross_similarity(),
            "caches {} vs images {}",
            caches.cross_similarity(),
            imgs.cross_similarity()
        );
        assert!(caches.cross_similarity() > 0.4, "{}", caches.cross_similarity());
    }

    #[test]
    fn dedup_grows_as_blocks_shrink() {
        let c = corpus();
        let small = sweep_exact(&c, ContentSet::Caches, 2048, Codec::Off);
        let large = sweep_exact(&c, ContentSet::Caches, 32768, Codec::Off);
        assert!(
            small.dedup_ratio() >= large.dedup_ratio(),
            "small {} vs large {}",
            small.dedup_ratio(),
            large.dedup_ratio()
        );
    }

    #[test]
    fn compression_grows_with_block_size() {
        let c = corpus();
        let small = sweep_exact(&c, ContentSet::Caches, 1024, Codec::Gzip(6));
        let large = sweep_exact(&c, ContentSet::Caches, 32768, Codec::Gzip(6));
        assert!(
            large.compression_ratio() > small.compression_ratio(),
            "large {} vs small {}",
            large.compression_ratio(),
            small.compression_ratio()
        );
    }

    #[test]
    fn gzip_ratio_in_paper_range_at_large_blocks() {
        // Paper Figure 2: gzip-6 on caches ≈ 2–3.5x at 64–128 KiB.
        let c = corpus();
        let s = sweep_exact(&c, ContentSet::Caches, 65536, Codec::Gzip(6));
        let r = s.compression_ratio();
        assert!((1.6..4.5).contains(&r), "gzip ratio {r}");
    }

    #[test]
    fn sweep_parallel_equals_serial() {
        let c = corpus();
        let par = sweep(&c, ContentSet::Caches, 4096, Codec::Off, CompressionSampling::default(), 4);
        let ser = sweep(&c, ContentSet::Caches, 4096, Codec::Off, CompressionSampling::default(), 1);
        assert_eq!(par.nonzero_blocks, ser.nonzero_blocks);
        assert_eq!(par.unique_blocks, ser.unique_blocks);
        assert_eq!(par.cross_repetitions, ser.cross_repetitions);
        assert_eq!(par.per_image_unique_sum, ser.per_image_unique_sum);
    }

    #[test]
    fn similarity_bounds() {
        let c = corpus();
        let s = sweep_exact(&c, ContentSet::Caches, 4096, Codec::Off);
        let sim = s.cross_similarity();
        assert!((0.0..=1.0 + 1e-9).contains(&sim), "similarity {sim}");
    }

    #[test]
    fn ccr_is_product() {
        let c = corpus();
        let s = sweep_exact(&c, ContentSet::Caches, 8192, Codec::Gzip(6));
        let want = s.dedup_ratio() * s.compression_ratio();
        assert!((s.ccr() - want).abs() < 1e-9);
    }
}
