//! Incremental snapshot send/recv — the `zfs send -i` mechanism Squirrel
//! uses to propagate new VMI caches from the storage node to every compute
//! node (paper, Sections 3.2 and 3.5).
//!
//! A stream captures the difference between two snapshots of the sender's
//! pool: files added or changed, files deleted, and the payload of blocks
//! the receiver cannot already have (blocks absent from the base snapshot).
//! The receiver must sit exactly at the base snapshot; otherwise `recv`
//! fails and the caller falls back to a full replication, exactly the
//! offline-propagation logic of Section 3.5.

use crate::ddt::{BlockKey, SharedPayload};
use crate::pool::{CdcChunk, FileTable, Snapshot, ZPool};
use squirrel_compress::decompress;
use squirrel_hash::par::WorkerPool;
use squirrel_hash::ContentHash;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// One block carried by a stream. The payload is the *same* shared buffer
/// the sender's DDT entry holds — building a stream clones no block bytes —
/// and the receiver's DDT entry shares it too after `recv`.
#[derive(Clone, Debug)]
pub struct StreamBlock {
    pub key: BlockKey,
    pub psize: u32,
    /// Compressed payload; `None` when the sending pool is accounting-only.
    pub data: Option<SharedPayload>,
}

/// A serialized snapshot difference.
#[derive(Clone, Debug)]
pub struct SendStream {
    /// Base snapshot tag; `None` for a full (non-incremental) stream.
    pub base: Option<String>,
    /// Tip snapshot tag; `recv` recreates this snapshot on the receiver.
    pub tip: String,
    /// Files added or modified between base and tip (full new tables).
    pub upserts: Vec<(String, FileMeta)>,
    /// Files deleted between base and tip.
    pub deletes: Vec<String>,
    /// Blocks the receiver cannot already have.
    pub payload: Vec<StreamBlock>,
}

/// File metadata carried on the wire. The pointer table is shared with the
/// sender's snapshot (and, after `recv`, with the receiver's live table) —
/// sending N files clones N refcounts, not N pointer vectors.
#[derive(Clone, Debug)]
pub struct FileMeta {
    pub ptrs: Arc<Vec<Option<BlockKey>>>,
    /// Content-defined chunk table for CDC-imported files; `None` for
    /// block-addressed files. Shared with the sender's snapshot, like
    /// `ptrs`.
    pub chunks: Option<Arc<Vec<CdcChunk>>>,
    pub len: u64,
}

impl FileMeta {
    /// Every referenced block key, with multiplicity (mirrors
    /// `FileTable::iter_keys`).
    fn iter_keys(&self) -> impl Iterator<Item = BlockKey> + '_ {
        self.ptrs.iter().copied().flatten().chain(
            self.chunks
                .as_deref()
                .into_iter()
                .flatten()
                .map(|c| c.key),
        )
    }
}

/// Errors from [`ZPool::send_between`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendError {
    UnknownSnapshot(String),
}

/// Errors from [`ZPool::recv`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// The receiver does not hold the stream's base snapshot: a lagging node
    /// needs a full replication instead.
    MissingBase(String),
    /// The tip snapshot already exists locally (stream replayed).
    DuplicateTip(String),
    /// A payload block's content does not hash to its key — the stream was
    /// built from (or became) corrupt data. Nothing was applied.
    CorruptPayload(BlockKey),
    /// An upsert references a block that is neither in the stream payload
    /// nor already on the receiver. Nothing was applied.
    MissingBlock(BlockKey),
    /// The receiver crashed mid-apply; the transactional recv rolled back
    /// and the pool is unchanged. Retrying the same stream is safe.
    Interrupted,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownSnapshot(t) => write!(f, "unknown snapshot {t}"),
        }
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::MissingBase(t) => write!(f, "missing base snapshot {t}"),
            RecvError::DuplicateTip(t) => write!(f, "tip snapshot {t} already present"),
            RecvError::CorruptPayload(k) => write!(f, "corrupt payload block {k:032x}"),
            RecvError::MissingBlock(k) => write!(f, "stream missing payload block {k:032x}"),
            RecvError::Interrupted => write!(f, "recv interrupted; rolled back"),
        }
    }
}

impl std::error::Error for SendError {}
impl std::error::Error for RecvError {}

/// Wire-size constants for [`SendStream::wire_bytes`].
const WIRE_PTR_BYTES: u64 = 18; // key prefix + flags
const WIRE_FILE_OVERHEAD: u64 = 64;
const WIRE_BLOCK_HEADER: u64 = 24;
/// One CDC chunk record: 16-byte key + 8-byte logical offset + 4-byte length.
const WIRE_CHUNK_BYTES: u64 = 28;

/// Upsert pointer-count sentinel marking a CDC chunk table instead of a
/// block-pointer vector. A real pointer vector of 2^32 - 1 entries would be
/// a multi-terabyte file table, far past anything the encoder produces, so
/// fixed-mode streams never emit this value and their encoding is
/// byte-identical to the pre-CDC format (pinned by the golden test).
const CHUNKED_SENTINEL: u32 = u32::MAX;

/// Errors from [`SendStream::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadMagic,
    BadString,
    /// The framed stream's trailing content digest does not match its body
    /// (bit rot or in-flight corruption). See [`SendStream::decode_framed`].
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "stream truncated"),
            DecodeError::BadMagic => write!(f, "bad stream magic"),
            DecodeError::BadString => write!(f, "invalid utf-8 in stream"),
            DecodeError::BadChecksum => write!(f, "stream checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian binary reader for the wire format.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Bytes left to read — the upper bound any adversarial length field is
    /// clamped to before preallocating.
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

const STREAM_MAGIC: &[u8; 8] = b"SQRLSND1";
const FRAME_MAGIC: &[u8; 8] = b"SQRLFRM1";
/// Frame magic plus the trailing 16-byte content digest.
const FRAME_OVERHEAD: usize = 8 + 16;

impl SendStream {
    /// Serialize to the on-wire binary format (what a real deployment would
    /// multicast). `decode` inverts it exactly.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes() as usize);
        out.extend_from_slice(STREAM_MAGIC);
        match &self.base {
            Some(b) => {
                out.push(1);
                put_string(&mut out, b);
            }
            None => out.push(0),
        }
        put_string(&mut out, &self.tip);

        out.extend_from_slice(&(self.upserts.len() as u32).to_le_bytes());
        for (name, meta) in &self.upserts {
            put_string(&mut out, name);
            out.extend_from_slice(&meta.len.to_le_bytes());
            match &meta.chunks {
                Some(chunks) => {
                    out.extend_from_slice(&CHUNKED_SENTINEL.to_le_bytes());
                    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
                    for c in chunks.iter() {
                        out.extend_from_slice(&c.key.to_le_bytes());
                        out.extend_from_slice(&c.logical_off.to_le_bytes());
                        out.extend_from_slice(&c.len.to_le_bytes());
                    }
                }
                None => {
                    out.extend_from_slice(&(meta.ptrs.len() as u32).to_le_bytes());
                    for p in meta.ptrs.iter() {
                        match p {
                            Some(key) => {
                                out.push(1);
                                out.extend_from_slice(&key.to_le_bytes());
                            }
                            None => out.push(0),
                        }
                    }
                }
            }
        }

        out.extend_from_slice(&(self.deletes.len() as u32).to_le_bytes());
        for name in &self.deletes {
            put_string(&mut out, name);
        }

        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        for b in &self.payload {
            out.extend_from_slice(&b.key.to_le_bytes());
            out.extend_from_slice(&b.psize.to_le_bytes());
            match &b.data {
                Some(d) => {
                    out.push(1);
                    out.extend_from_slice(&(d.len() as u32).to_le_bytes());
                    out.extend_from_slice(d);
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Parse a stream produced by [`encode`](Self::encode).
    pub fn decode(data: &[u8]) -> Result<SendStream, DecodeError> {
        let mut r = Reader { data, pos: 0 };
        if r.take(8)? != STREAM_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let base = match r.u8()? {
            0 => None,
            _ => Some(r.string()?),
        };
        let tip = r.string()?;

        // Every count is clamped to the bytes actually left in the buffer
        // before preallocating: a corrupted length field can make the parse
        // fail with `Truncated`, never reserve gigabytes.
        let n_upserts = r.u32()? as usize;
        let mut upserts = Vec::with_capacity(n_upserts.min(r.remaining()));
        for _ in 0..n_upserts {
            let name = r.string()?;
            let len = r.u64()?;
            let n_ptrs = r.u32()?;
            if n_ptrs == CHUNKED_SENTINEL {
                let n_chunks = r.u32()? as usize;
                let mut chunks = Vec::with_capacity(n_chunks.min(r.remaining()));
                for _ in 0..n_chunks {
                    let key = r.u128()?;
                    let logical_off = r.u64()?;
                    let clen = r.u32()?;
                    chunks.push(CdcChunk { key, logical_off, len: clen });
                }
                upserts.push((
                    name,
                    FileMeta {
                        ptrs: Arc::new(Vec::new()),
                        chunks: Some(Arc::new(chunks)),
                        len,
                    },
                ));
            } else {
                let n_ptrs = n_ptrs as usize;
                let mut ptrs = Vec::with_capacity(n_ptrs.min(r.remaining()));
                for _ in 0..n_ptrs {
                    ptrs.push(match r.u8()? {
                        0 => None,
                        _ => Some(r.u128()?),
                    });
                }
                upserts.push((name, FileMeta { ptrs: Arc::new(ptrs), chunks: None, len }));
            }
        }

        let n_deletes = r.u32()? as usize;
        let mut deletes = Vec::with_capacity(n_deletes.min(r.remaining()));
        for _ in 0..n_deletes {
            deletes.push(r.string()?);
        }

        let n_payload = r.u32()? as usize;
        let mut payload = Vec::with_capacity(n_payload.min(r.remaining()));
        for _ in 0..n_payload {
            let key = r.u128()?;
            let psize = r.u32()?;
            let data = match r.u8()? {
                0 => None,
                _ => {
                    let n = r.u32()? as usize;
                    Some(r.take(n)?.to_vec().into())
                }
            };
            payload.push(StreamBlock { key, psize, data });
        }

        Ok(SendStream { base, tip, upserts, deletes, payload })
    }

    /// [`encode`](Self::encode) wrapped in an integrity frame: a distinct
    /// magic, the encoded body, and a trailing 128-bit content digest of the
    /// body. This is what actually crosses the (faulty) network — any bit
    /// flipped in flight makes [`decode_framed`](Self::decode_framed) fail
    /// with [`DecodeError::BadChecksum`] instead of applying garbage. The
    /// unframed `encode` format is unchanged (it is pinned by golden tests).
    pub fn encode_framed(&self) -> Vec<u8> {
        let inner = self.encode();
        let mut out = Vec::with_capacity(inner.len() + FRAME_OVERHEAD);
        out.extend_from_slice(FRAME_MAGIC);
        out.extend_from_slice(&inner);
        out.extend_from_slice(&ContentHash::of(&inner).short().to_le_bytes());
        out
    }

    /// Parse a stream produced by [`encode_framed`](Self::encode_framed),
    /// verifying the trailing digest before touching the body.
    pub fn decode_framed(data: &[u8]) -> Result<SendStream, DecodeError> {
        if data.len() < FRAME_OVERHEAD {
            return Err(DecodeError::Truncated);
        }
        if &data[..FRAME_MAGIC.len()] != FRAME_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let (inner, digest) = data[FRAME_MAGIC.len()..].split_at(data.len() - FRAME_OVERHEAD);
        let expected = u128::from_le_bytes(digest.try_into().expect("16-byte digest"));
        if ContentHash::of(inner).short() != expected {
            return Err(DecodeError::BadChecksum);
        }
        Self::decode(inner)
    }

    /// Bytes this stream occupies on the network: compressed payload plus
    /// pointer tables and framing. This is the quantity Figure 18's network
    /// accounting charges for cache propagation.
    pub fn wire_bytes(&self) -> u64 {
        let payload: u64 = self
            .payload
            .iter()
            .map(|b| b.psize as u64 + WIRE_BLOCK_HEADER)
            .sum();
        let tables: u64 = self
            .upserts
            .iter()
            .map(|(name, meta)| {
                let records = meta.ptrs.len() as u64 * WIRE_PTR_BYTES
                    + meta.chunks.as_deref().map(|c| c.len() as u64).unwrap_or(0)
                        * WIRE_CHUNK_BYTES;
                name.len() as u64 + WIRE_FILE_OVERHEAD + records
            })
            .sum();
        let deletes: u64 = self.deletes.iter().map(|n| n.len() as u64 + 8).sum();
        payload + tables + deletes + 128
    }

    /// Number of payload blocks.
    pub fn payload_blocks(&self) -> usize {
        self.payload.len()
    }

    /// Logical size of every block the stream's upsert tables reference:
    /// chunk records carry their length on the wire; block pointers are the
    /// pool record size. Payload validation and DDT staging both need this
    /// because CDC frames decompress to variable lengths.
    fn referenced_lsizes(&self, block_size: u32) -> BTreeMap<BlockKey, u32> {
        let mut sizes = BTreeMap::new();
        for (_, meta) in &self.upserts {
            match meta.chunks.as_deref() {
                Some(chunks) => {
                    for c in chunks {
                        sizes.insert(c.key, c.len);
                    }
                }
                None => {
                    for key in meta.ptrs.iter().copied().flatten() {
                        sizes.insert(key, block_size);
                    }
                }
            }
        }
        sizes
    }

    /// Apply this stream to many independent pools concurrently (the
    /// registration multicast: one prepared stream, N receiver ccVolumes).
    /// Pools are partitioned into contiguous chunks across up to `threads`
    /// scoped workers (0 = all cores); results come back in pool order.
    /// Each pool's `recv` is the same serial routine the single-receiver
    /// path runs, so outcomes are identical to an in-order replay.
    pub fn apply_all(
        &self,
        mut pools: Vec<&mut ZPool>,
        threads: usize,
    ) -> Vec<Result<(), RecvError>> {
        let n = squirrel_hash::par::resolve_threads(threads).min(pools.len().max(1));
        if n <= 1 {
            return pools.into_iter().map(|p| p.recv(self)).collect();
        }
        let chunk = pools.len().div_ceil(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pools
                .chunks_mut(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter_mut().map(|p| p.recv(self)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("recv worker panicked"))
                .collect()
        })
    }

    /// [`apply_all`](Self::apply_all) on a persistent [`WorkerPool`]: the
    /// same contiguous-chunk partitioning and per-pool serial `recv`, but
    /// executed by already-spawned workers — the registration fan-out's
    /// per-call thread-spawn cost disappears. Results come back in pool
    /// order, identical to an in-order replay.
    pub fn apply_all_on(
        &self,
        mut pools: Vec<&mut ZPool>,
        workers: &WorkerPool,
    ) -> Vec<Result<(), RecvError>> {
        let n = workers.threads().min(pools.len().max(1));
        if n <= 1 {
            return pools.into_iter().map(|p| p.recv(self)).collect();
        }
        let chunk = pools.len().div_ceil(n);
        // Each chunk sits behind its own mutex slot; worker `w` takes chunk
        // `w` exactly once, so locks never contend.
        type Slot<'a, 'b> = (Option<&'a mut [&'b mut ZPool]>, Vec<Result<(), RecvError>>);
        let slots: Vec<Mutex<Slot<'_, '_>>> = pools
            .chunks_mut(chunk)
            .map(|part| Mutex::new((Some(part), Vec::new())))
            .collect();
        workers.run(slots.len(), |w| {
            let mut slot = slots[w].lock().expect("recv slot poisoned");
            let part = slot.0.take().expect("each chunk is taken once");
            slot.1 = part.iter_mut().map(|p| p.recv(self)).collect();
        });
        slots
            .into_iter()
            .flat_map(|m| m.into_inner().expect("recv slot poisoned").1)
            .collect()
    }
}

impl ZPool {
    /// Build a stream carrying the difference from snapshot `base` (or from
    /// nothing, for a full stream) to snapshot `tip`.
    pub fn send_between(&self, base: Option<&str>, tip: &str) -> Result<SendStream, SendError> {
        let tip_snap = self
            .find_snapshot(tip)
            .ok_or_else(|| SendError::UnknownSnapshot(tip.to_string()))?;
        let base_snap = match base {
            Some(b) => Some(
                self.find_snapshot(b)
                    .ok_or_else(|| SendError::UnknownSnapshot(b.to_string()))?,
            ),
            None => None,
        };

        let empty = BTreeMap::new();
        let base_files = base_snap.map(|s| &s.files).unwrap_or(&empty);

        // Blocks the receiver already has: everything referenced at base.
        let base_keys: BTreeSet<BlockKey> = base_files
            .values()
            .flat_map(|t| t.iter_keys())
            .collect();

        let mut upserts = Vec::new();
        let mut payload_keys: BTreeSet<BlockKey> = BTreeSet::new();
        for (name, table) in &tip_snap.files {
            let unchanged = base_files.get(name).is_some_and(|b| b == table);
            if unchanged {
                continue;
            }
            // Shares the snapshot's pointer/chunk vectors (refcount bumps).
            upserts.push((
                name.clone(),
                FileMeta {
                    ptrs: Arc::clone(&table.ptrs),
                    chunks: table.chunks.clone(),
                    len: table.len,
                },
            ));
            for key in table.iter_keys() {
                if !base_keys.contains(&key) {
                    payload_keys.insert(key);
                }
            }
        }
        let deletes: Vec<String> = base_files
            .keys()
            .filter(|n| !tip_snap.files.contains_key(*n))
            .cloned()
            .collect();

        let payload = payload_keys
            .into_iter()
            .map(|key| {
                let e = self.ddt().get(&key).expect("snapshot references live block");
                // Shares the DDT's compressed buffer (refcount bump).
                StreamBlock { key, psize: e.psize, data: e.data.clone() }
            })
            .collect();

        Ok(SendStream {
            base: base.map(|s| s.to_string()),
            tip: tip.to_string(),
            upserts,
            deletes,
            payload,
        })
    }

    /// Incremental stream from the pool's previous snapshot to its latest
    /// (the common registration step); full stream when only one exists.
    pub fn send_latest(&self) -> Result<SendStream, SendError> {
        let tags = self.snapshot_tags();
        match tags.len() {
            0 => Err(SendError::UnknownSnapshot("<none>".to_string())),
            1 => self.send_between(None, tags[0]),
            n => self.send_between(Some(tags[n - 2]), tags[n - 1]),
        }
    }

    /// Apply a stream **transactionally**. The receiver's latest snapshot
    /// must equal the stream's base (or the stream must be full); every
    /// payload block must hash to its key; every upsert pointer must resolve
    /// to either a payload block or a block already present. All of that is
    /// checked *before* the first mutation, so any `Err` leaves the pool
    /// exactly as it was — a corrupt or impossible stream never half-applies.
    /// On success the receiver's live files match the sender's tip and a
    /// snapshot with the tip tag is created locally.
    pub fn recv(&mut self, stream: &SendStream) -> Result<(), RecvError> {
        self.validate_recv(stream)?;
        self.apply_stream(stream);
        Ok(())
    }

    /// Fault hook: run the same validation `recv` runs, then "crash" before
    /// the apply phase. The pool is untouched (that is the transactional
    /// guarantee under test) and the caller sees [`RecvError::Interrupted`]
    /// — or the stream's own validation error if it had one.
    pub fn recv_crashed(&mut self, stream: &SendStream) -> Result<(), RecvError> {
        self.validate_recv(stream)?;
        Err(RecvError::Interrupted)
    }

    /// The fallible half of [`recv`](Self::recv): every check, no mutation.
    fn validate_recv(&self, stream: &SendStream) -> Result<(), RecvError> {
        if self.has_snapshot(&stream.tip) {
            return Err(RecvError::DuplicateTip(stream.tip.clone()));
        }
        if let Some(base) = &stream.base {
            if !self.has_snapshot(base) {
                return Err(RecvError::MissingBase(base.clone()));
            }
        }
        let bs = self.block_size();
        let lsizes = stream.referenced_lsizes(bs as u32);
        let mut incoming: BTreeSet<BlockKey> = BTreeSet::new();
        for b in &stream.payload {
            if let Some(frame) = &b.data {
                let lsize = lsizes.get(&b.key).copied().unwrap_or(bs as u32) as usize;
                if ContentHash::of(&decompress(frame, lsize)).short() != b.key {
                    return Err(RecvError::CorruptPayload(b.key));
                }
            }
            incoming.insert(b.key);
        }
        for (_, meta) in &stream.upserts {
            for key in meta.iter_keys() {
                if !incoming.contains(&key) && self.ddt().get(&key).is_none() {
                    return Err(RecvError::MissingBlock(key));
                }
            }
        }
        Ok(())
    }

    /// The infallible half of [`recv`](Self::recv); only called on a
    /// validated stream.
    fn apply_stream(&mut self, stream: &SendStream) {
        self.meters.recv_streams.inc();
        self.meters.recv_wire_bytes.add(stream.wire_bytes());

        // Ingest payload blocks first so pointer installation always finds
        // its targets in the DDT.
        let lsizes = stream.referenced_lsizes(self.block_size() as u32);
        for b in &stream.payload {
            // add_ref with an initial "staging" reference; released after the
            // tables are installed so unreferenced payload doesn't leak.
            let bs = self.block_size() as u32;
            let lsize = lsizes.get(&b.key).copied().unwrap_or(bs);
            let (psize, data) = (b.psize, b.data.clone());
            self.ddt_mut().add_ref(b.key, || (psize, lsize, data));
        }

        for name in &stream.deletes {
            self.delete_file(name);
        }
        for (name, meta) in &stream.upserts {
            self.delete_file(name);
            for key in meta.iter_keys() {
                self.ddt_mut()
                    .add_ref(key, || unreachable!("validated stream resolves every block"));
            }
            self.files_mut().insert(
                name.clone(),
                FileTable { ptrs: meta.ptrs.clone(), chunks: meta.chunks.clone(), len: meta.len },
            );
        }

        // Drop staging references.
        for b in &stream.payload {
            self.ddt_mut().release(&b.key);
        }

        // Mirror the sender's tip snapshot.
        let snap = Snapshot { tag: stream.tip.clone(), files: self.files().clone() };
        for table in snap.files.values() {
            for key in table.iter_keys() {
                self.ddt_mut().add_ref(key, || unreachable!("live block"));
            }
        }
        self.push_snapshot(snap);
    }
}

#[cfg(test)]
mod proptests {
    use super::SendStream;
    use crate::config::PoolConfig;
    use crate::pool::ZPool;
    use proptest::prelude::*;
    use squirrel_compress::Codec;

    /// A representative wire image with upserts, deletes, and payload.
    fn golden_wire_bytes() -> Vec<u8> {
        let mut src = ZPool::new(PoolConfig::new(512, Codec::Lzjb));
        src.create_file("cache-a");
        for i in 0..3u8 {
            src.write_block("cache-a", i as u64, &vec![i + 1; 512]);
        }
        src.snapshot("s1");
        src.create_file("cache-b");
        src.write_block("cache-b", 0, &vec![9u8; 512]);
        src.delete_file("cache-a");
        src.snapshot("s2");
        src.send_between(Some("s1"), "s2").expect("send").encode()
    }

    #[derive(Debug, Clone)]
    enum Op {
        Write { file: u8, idx: u8, fill: u8 },
        Delete { file: u8 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u8..4, 0u8..6, any::<u8>()).prop_map(|(file, idx, fill)| Op::Write { file, idx, fill }),
            1 => (0u8..4).prop_map(|file| Op::Delete { file }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Streams survive the wire format exactly: any history's streams,
        /// encoded and decoded, replicate identically.
        #[test]
        fn incremental_replication_is_exact(
            epochs in proptest::collection::vec(
                proptest::collection::vec(op_strategy(), 0..8),
                1..5
            )
        ) {
            let mut src = ZPool::new(PoolConfig::new(512, Codec::Lz4));
            let mut dst = ZPool::new(PoolConfig::new(512, Codec::Lz4));
            for (e, ops) in epochs.iter().enumerate() {
                for op in ops {
                    match op {
                        Op::Write { file, idx, fill } => {
                            let name = format!("f{file}");
                            if !src.has_file(&name) {
                                src.create_file(&name);
                            }
                            src.write_block(&name, *idx as u64, &vec![*fill; 512]);
                        }
                        Op::Delete { file } => src.delete_file(&format!("f{file}")),
                    }
                }
                src.snapshot(&format!("s{e}"));
                let stream = src.send_latest().expect("send");
                // Round-trip through the binary wire format before applying.
                let stream = crate::send::SendStream::decode(&stream.encode()).expect("decode");
                dst.recv(&stream).expect("recv");
                prop_assert!(src.check_refcounts());
                prop_assert!(dst.check_refcounts());
            }
            // Replica live state == sender live state (== final snapshot).
            let src_files: Vec<String> = src.file_names().map(|s| s.to_string()).collect();
            let dst_files: Vec<String> = dst.file_names().map(|s| s.to_string()).collect();
            prop_assert_eq!(&src_files, &dst_files);
            for name in &src_files {
                prop_assert_eq!(src.file_len(name), dst.file_len(name));
                let blocks = src.file_len(name).unwrap_or(0).div_ceil(512);
                for b in 0..blocks {
                    prop_assert_eq!(src.read_block(name, b), dst.read_block(name, b));
                }
            }
        }

        /// Adversarial-input hardening: `decode` on truncated, bit-flipped,
        /// or arbitrary bytes always returns (Ok or DecodeError), never
        /// panics, and never over-allocates past the input size.
        #[test]
        fn decode_survives_truncation_and_bitflips(
            truncate_to in 0usize..400,
            flips in proptest::collection::vec((any::<u16>(), 0u8..8), 0..6)
        ) {
            let clean = golden_wire_bytes();
            let mut bytes = clean.clone();
            bytes.truncate(truncate_to.min(bytes.len()));
            for (pos, bit) in flips {
                if bytes.is_empty() {
                    break;
                }
                let i = pos as usize % bytes.len();
                bytes[i] ^= 1 << bit;
            }
            let _ = SendStream::decode(&bytes);
            let _ = SendStream::decode_framed(&bytes);
        }

        /// Completely random byte soup never panics either path.
        #[test]
        fn decode_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = SendStream::decode(&bytes);
            let _ = SendStream::decode_framed(&bytes);
        }

        /// Corrupted length fields in particular: clobber any aligned u32 in
        /// the image with an adversarial count and decode must fail cleanly
        /// (or succeed if the field was unused), not abort or balloon.
        #[test]
        fn decode_survives_length_field_corruption(
            offset in any::<u16>(),
            value in prop_oneof![Just(u32::MAX), Just(1 << 31), any::<u32>()]
        ) {
            let mut bytes = golden_wire_bytes();
            let i = offset as usize % (bytes.len() - 4);
            bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
            let _ = SendStream::decode(&bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use squirrel_compress::Codec;

    fn pool() -> ZPool {
        ZPool::new(PoolConfig::new(512, Codec::Lzjb))
    }

    fn fill(p: &mut ZPool, name: &str, blocks: &[u8]) {
        p.create_file(name);
        for (i, &f) in blocks.iter().enumerate() {
            p.write_block(name, i as u64, &vec![f; 512]);
        }
    }

    #[test]
    fn full_stream_replicates_everything() {
        let mut src = pool();
        fill(&mut src, "cache-1", &[1, 2, 3]);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");
        assert_eq!(stream.payload_blocks(), 3);

        let mut dst = pool();
        dst.recv(&stream).expect("recv");
        assert_eq!(dst.read_block("cache-1", 1).expect("file"), vec![2u8; 512]);
        assert_eq!(dst.latest_snapshot(), Some("s1"));
        assert!(dst.check_refcounts());
    }

    #[test]
    fn incremental_stream_carries_only_new_blocks() {
        let mut src = pool();
        fill(&mut src, "cache-1", &[1, 2, 3]);
        src.snapshot("s1");
        fill(&mut src, "cache-2", &[2, 3, 4]); // 2,3 dedup against cache-1
        src.snapshot("s2");

        let stream = src.send_between(Some("s1"), "s2").expect("send");
        assert_eq!(stream.payload_blocks(), 1, "only block '4' is new");
        assert_eq!(stream.upserts.len(), 1);
        assert!(stream.deletes.is_empty());

        let mut dst = pool();
        dst.recv(&src.send_between(None, "s1").expect("full")).expect("seed");
        dst.recv(&stream).expect("incremental");
        assert_eq!(dst.read_block("cache-2", 2).expect("file"), vec![4u8; 512]);
        assert!(dst.check_refcounts());
    }

    #[test]
    fn recv_without_base_fails() {
        let mut src = pool();
        fill(&mut src, "a", &[1]);
        src.snapshot("s1");
        fill(&mut src, "b", &[2]);
        src.snapshot("s2");
        let inc = src.send_between(Some("s1"), "s2").expect("send");

        let mut lagging = pool();
        assert_eq!(lagging.recv(&inc), Err(RecvError::MissingBase("s1".to_string())));
    }

    #[test]
    fn recv_duplicate_tip_fails() {
        let mut src = pool();
        fill(&mut src, "a", &[1]);
        src.snapshot("s1");
        let full = src.send_between(None, "s1").expect("send");
        let mut dst = pool();
        dst.recv(&full).expect("first");
        assert_eq!(dst.recv(&full), Err(RecvError::DuplicateTip("s1".to_string())));
    }

    #[test]
    fn deletions_propagate() {
        let mut src = pool();
        fill(&mut src, "a", &[1]);
        fill(&mut src, "b", &[2]);
        src.snapshot("s1");
        src.delete_file("a");
        src.snapshot("s2");

        let mut dst = pool();
        dst.recv(&src.send_between(None, "s1").expect("full")).expect("seed");
        dst.recv(&src.send_between(Some("s1"), "s2").expect("inc")).expect("inc");
        assert!(!dst.has_file("a"));
        assert!(dst.has_file("b"));
        assert!(dst.check_refcounts());
    }

    #[test]
    fn send_latest_picks_last_pair() {
        let mut src = pool();
        fill(&mut src, "a", &[1]);
        src.snapshot("s1");
        fill(&mut src, "b", &[9]);
        src.snapshot("s2");
        let s = src.send_latest().expect("send");
        assert_eq!(s.base.as_deref(), Some("s1"));
        assert_eq!(s.tip, "s2");
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let mut src = pool();
        fill(&mut src, "a", &[1]);
        src.snapshot("s1");
        fill(&mut src, "b", &[1]); // fully dedups
        src.snapshot("s2");
        fill(&mut src, "c", &[7, 8, 9]); // three new blocks
        src.snapshot("s3");
        let dedup_stream = src.send_between(Some("s1"), "s2").expect("send");
        let fresh_stream = src.send_between(Some("s2"), "s3").expect("send");
        assert!(
            fresh_stream.wire_bytes() > dedup_stream.wire_bytes(),
            "{} vs {}",
            fresh_stream.wire_bytes(),
            dedup_stream.wire_bytes()
        );
    }

    #[test]
    fn unknown_snapshots_error() {
        let src = pool();
        assert!(matches!(
            src.send_between(None, "nope"),
            Err(SendError::UnknownSnapshot(_))
        ));
    }

    #[test]
    fn wire_encode_decode_roundtrip() {
        let mut src = pool();
        fill(&mut src, "cache-a", &[1, 2, 3]);
        src.snapshot("s1");
        fill(&mut src, "cache-b", &[2, 9]);
        src.delete_file("cache-a");
        src.snapshot("s2");
        let stream = src.send_between(Some("s1"), "s2").expect("send");
        let bytes = stream.encode();
        let back = SendStream::decode(&bytes).expect("decode");
        assert_eq!(back.base, stream.base);
        assert_eq!(back.tip, stream.tip);
        assert_eq!(back.deletes, stream.deletes);
        assert_eq!(back.upserts.len(), stream.upserts.len());
        assert_eq!(back.payload.len(), stream.payload.len());

        // A receiver fed the decoded stream behaves identically.
        let mut dst = pool();
        dst.recv(&src.send_between(None, "s1").expect("full")).expect("seed");
        dst.recv(&back).expect("recv decoded");
        assert!(!dst.has_file("cache-a"));
        assert_eq!(dst.read_block("cache-b", 1).expect("file"), vec![9u8; 512]);
        assert!(dst.check_refcounts());
    }

    /// Golden test: the wire encoding is byte-identical to the seed-era
    /// (pre-shared-payload) encoder. The lengths and SHA-256 digests below
    /// were captured from the seed code before `StreamBlock`/`FileMeta`
    /// switched to `Arc`-shared buffers; the zero-copy refactor must not
    /// change a single wire byte.
    #[test]
    fn wire_bytes_match_seed_golden() {
        let mut src = pool();
        fill(&mut src, "cache-a", &[1, 2, 3]);
        src.snapshot("s1");
        fill(&mut src, "cache-b", &[2, 9]);
        src.delete_file("cache-a");
        src.snapshot("s2");

        let full = src.send_between(None, "s1").expect("full").encode();
        assert_eq!(full.len(), 236);
        assert_eq!(
            squirrel_hash::ContentHash::of(&full).to_hex(),
            "aa5fcb6fa536a294f258eae0e3c073d8d85325fafaf8a27f7f5d11be3ae77e21"
        );

        let inc = src.send_between(Some("s1"), "s2").expect("inc").encode();
        assert_eq!(inc.len(), 146);
        assert_eq!(
            squirrel_hash::ContentHash::of(&inc).to_hex(),
            "244d7ca4c11273c43d5ad4cc4ddc7ce3b65ff87585ab89593dd26e43b6c253e7"
        );
    }

    #[test]
    fn framed_roundtrip_and_bitflip_detection() {
        let mut src = pool();
        fill(&mut src, "cache-a", &[1, 2, 3]);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");
        let framed = stream.encode_framed();
        let back = SendStream::decode_framed(&framed).expect("decode framed");
        assert_eq!(back.tip, stream.tip);
        assert_eq!(back.payload.len(), stream.payload.len());

        // Every single-bit flip anywhere in the frame is detected.
        for byte in [8, framed.len() / 2, framed.len() - 1] {
            let mut bad = framed.clone();
            bad[byte] ^= 0x10;
            assert!(
                SendStream::decode_framed(&bad).is_err(),
                "flip at byte {byte} must not decode"
            );
        }
        // Wrong magic and short input are classified, not panics.
        assert_eq!(SendStream::decode_framed(b"tiny").unwrap_err(), DecodeError::Truncated);
        assert_eq!(
            SendStream::decode_framed(&framed[8..]).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn recv_rejects_corrupt_payload_without_mutating() {
        let mut src = pool();
        fill(&mut src, "cache-a", &[1, 2, 3]);
        src.snapshot("s1");
        let mut stream = src.send_between(None, "s1").expect("send");
        // Corrupt one payload block's content (validly framed, wrong bytes
        // — what a stream built from a rotten source pool looks like).
        let victim = stream.payload[1].key;
        stream.payload[1].data =
            Some(squirrel_compress::compress(Codec::Lzjb, &vec![0xeeu8; 512]).into());

        let mut dst = pool();
        assert_eq!(dst.recv(&stream), Err(RecvError::CorruptPayload(victim)));
        // Transactional: nothing was applied.
        assert_eq!(dst.file_count(), 0);
        assert_eq!(dst.stats().unique_blocks, 0);
        assert_eq!(dst.latest_snapshot(), None);
        assert!(dst.check_refcounts());
    }

    #[test]
    fn recv_rejects_unresolvable_pointer_without_mutating() {
        let mut src = pool();
        fill(&mut src, "cache-a", &[1, 2]);
        src.snapshot("s1");
        let mut stream = src.send_between(None, "s1").expect("send");
        let dropped = stream.payload.pop().expect("payload").key;

        let mut dst = pool();
        assert_eq!(dst.recv(&stream), Err(RecvError::MissingBlock(dropped)));
        assert_eq!(dst.file_count(), 0);
        assert_eq!(dst.stats().unique_blocks, 0);
        assert!(dst.check_refcounts());
    }

    #[test]
    fn crashed_recv_rolls_back_and_retry_succeeds() {
        let mut src = pool();
        fill(&mut src, "cache-a", &[1, 2, 3]);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");

        let mut dst = pool();
        assert_eq!(dst.recv_crashed(&stream), Err(RecvError::Interrupted));
        assert_eq!(dst.file_count(), 0, "crash rolled back");
        assert_eq!(dst.latest_snapshot(), None);
        // The retry of the very same stream applies cleanly.
        dst.recv(&stream).expect("retry");
        assert_eq!(dst.read_block("cache-a", 2).expect("file"), vec![3u8; 512]);
        assert!(dst.check_refcounts());
        // A crash on a stream that would not validate reports the
        // validation error, not Interrupted.
        assert_eq!(
            dst.recv_crashed(&stream),
            Err(RecvError::DuplicateTip("s1".to_string()))
        );
    }

    #[test]
    fn adversarial_length_fields_fail_cleanly() {
        let mut src = pool();
        fill(&mut src, "f", &[1]);
        src.snapshot("s");
        let bytes = src.send_between(None, "s").expect("send").encode();
        // Overwrite the upsert-count field (right after magic + base flag +
        // tip string) with u32::MAX: must error, not allocate 4 G entries.
        let tip_end = 8 + 1 + 4 + 1; // magic, no-base flag, len("s")=1, "s"
        let mut bad = bytes.clone();
        bad[tip_end..tip_end + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(SendStream::decode(&bad).unwrap_err(), DecodeError::Truncated);
        // A huge string length dies the same way.
        let mut bad = bytes;
        bad[8 + 1..8 + 1 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // (base flag 0 means tip string comes first; clobber its length.)
        assert!(SendStream::decode(&bad).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(SendStream::decode(b"not a stream").unwrap_err(), DecodeError::BadMagic);
        assert_eq!(SendStream::decode(b"SQRL").unwrap_err(), DecodeError::Truncated);
        let mut src = pool();
        fill(&mut src, "f", &[1]);
        src.snapshot("s");
        let mut bytes = src.send_between(None, "s").expect("send").encode();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(SendStream::decode(&bytes).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn encoded_size_tracks_wire_estimate() {
        let mut src = pool();
        fill(&mut src, "cache", &[1, 2, 3, 4, 5]);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");
        let actual = stream.encode().len() as u64;
        let estimate = stream.wire_bytes();
        // The estimate is the accounting number; it must be within 2x of
        // the real serialization.
        assert!(actual <= estimate * 2 && estimate <= actual * 2, "{actual} vs {estimate}");
    }

    #[test]
    fn apply_all_matches_serial_recv_on_every_pool() {
        let mut src = pool();
        fill(&mut src, "cache-1", &[1, 2, 3, 2]);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");

        for threads in [1, 2, 8] {
            let mut pools: Vec<ZPool> = (0..5).map(|_| pool()).collect();
            let results = stream.apply_all(pools.iter_mut().collect(), threads);
            assert_eq!(results.len(), 5);
            assert!(results.iter().all(|r| r.is_ok()), "threads={threads}");
            let mut reference = pool();
            reference.recv(&stream).expect("recv");
            for p in &pools {
                assert_eq!(p.stats(), reference.stats());
                assert!(p.check_refcounts());
                assert_eq!(p.read_block("cache-1", 1), reference.read_block("cache-1", 1));
            }
        }
        // Errors surface per pool, in pool order.
        let mut good = pool();
        let mut dup = pool();
        dup.recv(&stream).expect("pre-seed");
        let results = stream.apply_all(vec![&mut good, &mut dup], 2);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(RecvError::DuplicateTip("s1".to_string())));
    }

    #[test]
    fn apply_all_on_pool_matches_serial_recv() {
        use squirrel_hash::par::WorkerPool;
        let mut src = pool();
        fill(&mut src, "cache-1", &[1, 2, 3, 2]);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");
        let mut reference = pool();
        reference.recv(&stream).expect("recv");

        for threads in [1, 2, 8] {
            let workers = WorkerPool::new(threads);
            let mut pools: Vec<ZPool> = (0..5).map(|_| pool()).collect();
            let results = stream.apply_all_on(pools.iter_mut().collect(), &workers);
            assert_eq!(results.len(), 5);
            assert!(results.iter().all(|r| r.is_ok()), "threads={threads}");
            for p in &pools {
                assert_eq!(p.stats(), reference.stats());
                assert!(p.check_refcounts());
            }
            // The pool is reusable: a second fan-out over fresh receivers.
            let mut again: Vec<ZPool> = (0..3).map(|_| pool()).collect();
            let results = stream.apply_all_on(again.iter_mut().collect(), &workers);
            assert!(results.iter().all(|r| r.is_ok()));
        }
        // Errors surface per pool, in pool order.
        let workers = WorkerPool::new(2);
        let mut good = pool();
        let mut dup = pool();
        dup.recv(&stream).expect("pre-seed");
        let results = stream.apply_all_on(vec![&mut good, &mut dup], &workers);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(RecvError::DuplicateTip("s1".to_string())));
    }

    #[test]
    fn cdc_streams_roundtrip_and_replicate() {
        use crate::config::ChunkStrategy;
        use squirrel_hash::cdc::CdcParams;
        let bs = 512;
        let cfg = || {
            PoolConfig::new(bs, Codec::Lzjb)
                .with_chunking(ChunkStrategy::Cdc(CdcParams::with_average(1024)))
        };
        let mut src = ZPool::new(cfg());
        let blocks: Vec<Vec<u8>> = (0..16)
            .map(|i| (0..bs).map(|j| ((i * 37 + j * 11) % 251) as u8).collect())
            .collect();
        src.import_file_parallel("img", &blocks, 16 * bs as u64);
        src.snapshot("s1");
        let stream = src.send_between(None, "s1").expect("send");
        assert!(stream.upserts[0].1.chunks.is_some(), "chunk table on the wire");
        // The chunk table survives the binary wire format exactly.
        let decoded = SendStream::decode(&stream.encode()).expect("decode");
        assert_eq!(
            decoded.upserts[0].1.chunks.as_deref(),
            stream.upserts[0].1.chunks.as_deref()
        );
        let mut dst = ZPool::new(cfg());
        dst.recv(&decoded).expect("recv");
        for i in 0..16u64 {
            assert_eq!(dst.read_block("img", i), src.read_block("img", i), "block {i}");
        }
        assert!(dst.check_refcounts());
        assert!(dst.scrub().is_clean(), "receiver DDT carries correct lsizes");
        // An incremental on top: re-import with a shifted prefix, send s1→s2.
        let mut v2 = vec![vec![9u8; bs]];
        v2.extend(blocks[..15].iter().cloned());
        src.import_file_parallel("img", &v2, 16 * bs as u64);
        src.snapshot("s2");
        let inc = src.send_between(Some("s1"), "s2").expect("inc");
        let inc = SendStream::decode(&inc.encode()).expect("decode");
        dst.recv(&inc).expect("recv inc");
        for i in 0..16u64 {
            assert_eq!(dst.read_block("img", i), src.read_block("img", i), "v2 block {i}");
        }
        assert!(dst.check_refcounts());
    }

    #[test]
    fn chain_of_increments_matches_direct_state() {
        let mut src = pool();
        let mut dst = pool();
        for step in 0..5u8 {
            fill(&mut src, &format!("cache-{step}"), &[step, step + 1]);
            src.snapshot(&format!("s{step}"));
            let stream = src.send_latest().expect("send");
            dst.recv(&stream).expect("recv");
        }
        assert_eq!(dst.file_count(), 5);
        for step in 0..5u8 {
            assert_eq!(
                dst.read_block(&format!("cache-{step}"), 0).expect("file"),
                vec![step; 512]
            );
        }
        assert!(dst.check_refcounts());
    }
}
