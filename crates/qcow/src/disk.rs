//! The `VirtualDisk` read interface and basic backends.

/// A log of downward read requests `(offset, len)` a layer issued.
pub type ReadLog = Vec<(u64, u32)>;

/// Anything a chain layer can read from. Reads never fail: out-of-range
/// bytes are zero (sparse semantics, matching the dataset layer).
pub trait VirtualDisk {
    /// Fill `buf` with bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]);

    /// Virtual size in bytes.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: VirtualDisk + ?Sized> VirtualDisk for Box<T> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }
}

impl<T: VirtualDisk + ?Sized> VirtualDisk for &mut T {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// An all-zero disk of a given size.
#[derive(Clone, Copy, Debug)]
pub struct ZeroDisk {
    pub size: u64,
}

impl VirtualDisk for ZeroDisk {
    fn read_at(&mut self, _offset: u64, buf: &mut [u8]) {
        buf.fill(0);
    }

    fn len(&self) -> u64 {
        self.size
    }
}

/// An immutable in-memory disk over a shared buffer. Cloning is a refcount
/// bump, so M concurrently booting VMs can layer their private CoW/CoR
/// chains over the *same* base-image bytes without M copies — the
/// boot-storm driver's base layer.
#[derive(Clone, Debug)]
pub struct SharedDisk {
    data: std::sync::Arc<[u8]>,
}

impl SharedDisk {
    pub fn new(data: impl Into<std::sync::Arc<[u8]>>) -> Self {
        SharedDisk { data: data.into() }
    }

    /// The shared buffer itself.
    pub fn payload(&self) -> std::sync::Arc<[u8]> {
        std::sync::Arc::clone(&self.data)
    }
}

impl VirtualDisk for SharedDisk {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        buf.fill(0);
        let n = self.data.len() as u64;
        if offset >= n {
            return;
        }
        let end = (offset + buf.len() as u64).min(n);
        buf[..(end - offset) as usize].copy_from_slice(&self.data[offset as usize..end as usize]);
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

/// An in-memory disk, optionally logging the reads it receives.
#[derive(Clone, Debug, Default)]
pub struct MemDisk {
    pub data: Vec<u8>,
    log: Option<ReadLog>,
}

impl MemDisk {
    pub fn new(data: Vec<u8>) -> Self {
        MemDisk { data, log: None }
    }

    /// Enable request logging (each `read_at` appends one entry).
    pub fn logged(mut self) -> Self {
        self.log = Some(Vec::new());
        self
    }

    /// Drain the request log.
    pub fn take_log(&mut self) -> ReadLog {
        self.log.take().unwrap_or_default()
    }
}

impl VirtualDisk for MemDisk {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        if let Some(log) = &mut self.log {
            log.push((offset, buf.len() as u32));
        }
        buf.fill(0);
        let n = self.data.len() as u64;
        if offset >= n {
            return;
        }
        let end = (offset + buf.len() as u64).min(n);
        buf[..(end - offset) as usize].copy_from_slice(&self.data[offset as usize..end as usize]);
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_disk_reads_zero() {
        let mut d = ZeroDisk { size: 100 };
        let mut buf = vec![0xff; 8];
        d.read_at(10, &mut buf);
        assert_eq!(buf, vec![0; 8]);
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn mem_disk_roundtrip_and_tail_zero() {
        let mut d = MemDisk::new(vec![1, 2, 3, 4]);
        let mut buf = vec![0xff; 6];
        d.read_at(2, &mut buf);
        assert_eq!(buf, vec![3, 4, 0, 0, 0, 0]);
    }

    #[test]
    fn mem_disk_logs_requests() {
        let mut d = MemDisk::new(vec![0; 64]).logged();
        let mut buf = [0u8; 16];
        d.read_at(0, &mut buf);
        d.read_at(32, &mut buf);
        assert_eq!(d.take_log(), vec![(0, 16), (32, 16)]);
        assert!(d.take_log().is_empty(), "log drained");
    }

    #[test]
    fn shared_disk_clones_share_one_buffer() {
        let base = SharedDisk::new(vec![7u8; 64]);
        let mut a = base.clone();
        let mut b = base.clone();
        assert!(std::sync::Arc::ptr_eq(&a.payload(), &b.payload()));
        let mut buf = [0u8; 4];
        a.read_at(0, &mut buf);
        assert_eq!(buf, [7; 4]);
        b.read_at(62, &mut buf);
        assert_eq!(buf, [7, 7, 0, 0], "tail reads are zero-padded");
        assert_eq!(base.len(), 64);
    }

    #[test]
    fn boxed_dyn_disk_works() {
        let mut d: Box<dyn VirtualDisk> = Box::new(MemDisk::new(vec![9; 4]));
        let mut buf = [0u8; 2];
        d.read_at(1, &mut buf);
        assert_eq!(buf, [9, 9]);
    }
}
