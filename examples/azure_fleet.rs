//! Azure-fleet scenario: register a census-shaped catalog of images and run
//! the paper's headline measurement — how much disk and memory a compute
//! node spends to hoard *every* cache, and how much network a boot storm
//! costs with and without Squirrel.
//!
//! ```text
//! cargo run --release --example azure_fleet -- [n_images]
//! ```

use squirrel_repro::cluster::LinkKind;
use squirrel_repro::core::{Squirrel, SquirrelConfig};
use squirrel_repro::dataset::{Corpus, CorpusConfig};
use std::sync::Arc;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let scale = 2048u64;
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        n_images: n,
        scale,
        ..CorpusConfig::azure(scale, 2014)
    }));
    let nodes = 16u32;
    println!("registering {n} census-shaped images on a {nodes}-node cloud...");

    let mut squirrel = Squirrel::new(
        SquirrelConfig::builder()
            .compute_nodes(nodes)
            .link(LinkKind::QdrInfiniband)
            .build(),
        Arc::clone(&corpus),
    );

    let mut total_cache = 0u64;
    let mut total_diff = 0u64;
    for img in 0..n {
        let r = squirrel.register(img).expect("register");
        total_cache += r.cache_bytes;
        total_diff += r.diff_wire_bytes;
    }
    let stats = squirrel.scvol_stats();
    let proj = scale as f64 * 607.0 / n as f64;
    println!(
        "\nall {} caches hoarded on every node:\n  raw caches      {:>8.1} MiB (projected {:>7.1} GiB)\n  cVolume disk    {:>8.1} MiB (projected {:>7.1} GiB; paper: ~10 GB)\n  DDT memory      {:>8.1} MiB (projected {:>7.1} MiB; paper: ~60 MB)\n  mean diff/reg   {:>8.1} KiB",
        n,
        total_cache as f64 / (1 << 20) as f64,
        total_cache as f64 * proj / (1u64 << 30) as f64,
        stats.total_disk_bytes() as f64 / (1 << 20) as f64,
        stats.total_disk_bytes() as f64 * proj / (1u64 << 30) as f64,
        stats.ddt_memory_bytes as f64 / (1 << 20) as f64,
        stats.ddt_memory_bytes as f64 * proj / (1u64 << 20) as f64,
        total_diff as f64 / n as f64 / 1024.0,
    );

    // Boot storm: every node boots 4 distinct images.
    squirrel.network_mut().reset_ledgers();
    let mut warm_boots = 0u32;
    for node in 0..nodes {
        for v in 0..4u32 {
            let img = (node * 4 + v) % n;
            let out = squirrel.boot(node, img).expect("boot");
            warm_boots += out.warm as u32;
        }
    }
    println!(
        "\nboot storm: {} boots, {} warm, compute-node network traffic {} bytes",
        nodes * 4,
        warm_boots,
        squirrel.network().compute_rx_total()
    );
    assert_eq!(squirrel.network().compute_rx_total(), 0, "scatter hoarding works");
}
