//! The Squirrel system: scVolume, ccVolumes, and the paper's workflows.

use crate::trace::paper_scale_trace;
use squirrel_bootsim::{Backend, BootReport, BootSim, DedupVolumeParams};
use squirrel_cluster::{GlusterConfig, GlusterVolume, LinkKind, Network, NodeId};
use squirrel_compress::Codec;
use squirrel_dataset::{Corpus, ImageId};
use squirrel_qcow::{CorCache, VirtualDisk};
use squirrel_zfs::{PoolConfig, RecvError, SpaceStats, ZPool};
use std::collections::BTreeMap;
use std::sync::Arc;

/// System configuration; defaults match the paper's deployment.
#[derive(Clone, Copy, Debug)]
pub struct SquirrelConfig {
    /// cVolume record size. The paper's evaluation picks 64 KiB.
    pub block_size: usize,
    /// cVolume compression. The paper picks gzip-6.
    pub codec: Codec,
    /// Snapshot retention window `n`, in days (offline propagation window).
    pub gc_window_days: u64,
    /// Interconnect used for propagation and cold-path traffic.
    pub link: LinkKind,
    pub compute_nodes: u32,
    pub storage_nodes: u32,
    /// Worker threads for cache ingestion and multicast application
    /// (`0` = all available cores). Purely a throughput knob: results are
    /// bit-identical at any setting.
    pub threads: usize,
}

impl Default for SquirrelConfig {
    fn default() -> Self {
        SquirrelConfig {
            block_size: 64 * 1024,
            codec: Codec::Gzip(6),
            gc_window_days: 7,
            link: LinkKind::GbE,
            compute_nodes: 64,
            storage_nodes: 4,
            threads: 0,
        }
    }
}

/// Errors surfaced by Squirrel's operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SquirrelError {
    UnknownImage(ImageId),
    AlreadyRegistered(ImageId),
    NotRegistered(ImageId),
    NodeOffline(NodeId),
    NoSuchNode(NodeId),
}

impl std::fmt::Display for SquirrelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SquirrelError::UnknownImage(i) => write!(f, "unknown image {i}"),
            SquirrelError::AlreadyRegistered(i) => write!(f, "image {i} already registered"),
            SquirrelError::NotRegistered(i) => write!(f, "image {i} not registered"),
            SquirrelError::NodeOffline(n) => write!(f, "node {n} is offline"),
            SquirrelError::NoSuchNode(n) => write!(f, "no such compute node {n}"),
        }
    }
}

impl std::error::Error for SquirrelError {}

/// Outcome of a registration (paper Figure 6).
#[derive(Clone, Debug)]
pub struct RegisterReport {
    pub image: ImageId,
    /// Bytes the copy-on-read boot captured (the raw cache size).
    pub cache_bytes: u64,
    /// Snapshot-diff wire size multicast to the compute nodes.
    pub diff_wire_bytes: u64,
    /// Compute nodes whose ccVolume received the diff.
    pub nodes_updated: u32,
    /// End-to-end registration seconds (first boot + snapshot + multicast).
    pub seconds: f64,
    /// Snapshot tag created on the scVolume.
    pub snapshot_tag: String,
}

/// Outcome of a VM boot on a compute node (paper Figure 7).
#[derive(Clone, Debug)]
pub struct BootOutcome {
    pub image: ImageId,
    pub node: NodeId,
    /// True when the node's ccVolume held the cache (scatter-hoard hit).
    pub warm: bool,
    /// Bytes this boot moved over the network to the compute node.
    pub net_bytes: u64,
    /// Simulated boot duration at paper scale.
    pub report: BootReport,
}

/// Outcome of a lagging node's catch-up (paper Section 3.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejoinOutcome {
    /// Node was already in sync.
    UpToDate,
    /// Incremental snapshot stream applied.
    Incremental { wire_bytes: u64 },
    /// Base snapshot was collected; the whole scVolume was re-replicated.
    FullReplication { wire_bytes: u64 },
}

struct ComputeNode {
    ccvol: ZPool,
    online: bool,
}

struct Registration {
    snapshot_tag: String,
    day: u64,
}

/// The system: one scVolume, `compute_nodes` ccVolumes, a parallel FS for
/// the raw images, and a simulated clock (days).
pub struct Squirrel {
    config: SquirrelConfig,
    corpus: Arc<Corpus>,
    net: Network,
    gluster: GlusterVolume,
    scvol: ZPool,
    nodes: Vec<ComputeNode>,
    registered: BTreeMap<ImageId, Registration>,
    day: u64,
    snapshot_days: BTreeMap<String, u64>,
    /// Monotonic registration counter: snapshot tags must be unique even
    /// when an image is deregistered and registered again.
    reg_seq: u64,
    sim: BootSim,
}

/// Adapter: expose a corpus image as a [`VirtualDisk`] for the registration
/// boot chain.
struct ImageDisk {
    corpus: Arc<Corpus>,
    image: ImageId,
}

impl VirtualDisk for ImageDisk {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        self.corpus.image(self.image).read_at(offset, buf);
    }

    fn len(&self) -> u64 {
        self.corpus.image(self.image).virtual_bytes()
    }
}

impl Squirrel {
    /// Bring up the system for `corpus` (images known, none registered).
    pub fn new(config: SquirrelConfig, corpus: Arc<Corpus>) -> Self {
        assert!(config.storage_nodes >= 4, "gluster 2x2 needs four bricks");
        let net = Network::new(config.link, config.compute_nodes, config.storage_nodes);
        let bricks: Vec<NodeId> =
            (config.compute_nodes..config.compute_nodes + 4).collect();
        let gluster = GlusterVolume::new(GlusterConfig::default(), bricks);
        let pool_cfg =
            PoolConfig::new(config.block_size, config.codec).with_threads(config.threads);
        let nodes = (0..config.compute_nodes)
            .map(|_| ComputeNode { ccvol: ZPool::new(pool_cfg), online: true })
            .collect();
        Squirrel {
            config,
            corpus,
            net,
            gluster,
            scvol: ZPool::new(pool_cfg),
            nodes,
            registered: BTreeMap::new(),
            day: 0,
            snapshot_days: BTreeMap::new(),
            reg_seq: 0,
            sim: BootSim::new(),
        }
    }

    pub fn config(&self) -> &SquirrelConfig {
        &self.config
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The simulated clock, in days since bring-up.
    pub fn today(&self) -> u64 {
        self.day
    }

    /// Advance the clock (drives the GC window).
    pub fn advance_days(&mut self, days: u64) {
        self.day += days;
    }

    fn cache_file_name(image: ImageId) -> String {
        format!("cache-{image:06}")
    }

    fn snapshot_tag(image: ImageId, seq: u64) -> String {
        format!("vmi-{image:06}-r{seq}")
    }

    /// Register an image (paper Section 3.2): first boot on a storage node
    /// behind a copy-on-read cache, store the cache into the scVolume,
    /// snapshot, and multicast the incremental diff to online nodes.
    pub fn register(&mut self, image: ImageId) -> Result<RegisterReport, SquirrelError> {
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }
        if self.registered.contains_key(&image) {
            return Err(SquirrelError::AlreadyRegistered(image));
        }

        // 1. First boot behind a CoR cache on the storage node. The cache
        //    captures exactly the boot working set.
        let handle = self.corpus.image(image);
        let cache_view = handle.cache();
        let trace = cache_view.boot_trace();
        let mut cor = CorCache::new(
            ImageDisk { corpus: Arc::clone(&self.corpus), image },
            self.config.block_size,
        );
        for op in &trace.ops {
            let mut buf = vec![0u8; op.len as usize];
            cor.read_at(op.offset, &mut buf);
        }
        let cache_bytes = cor.cached_bytes();

        // 2. Move the cache from memory into the scVolume through the
        //    staged pipeline: hashing and compression fan out over workers,
        //    the dedup/file-table commit stays serial and in block order,
        //    so the pool state matches a write_block replay exactly.
        let name = Self::cache_file_name(image);
        let blocks = cor.into_blocks();
        self.scvol.import_blocks_parallel(&name, &blocks);

        // 3. Snapshot the scVolume for this registration.
        self.reg_seq += 1;
        let tag = Self::snapshot_tag(image, self.reg_seq);
        self.scvol.snapshot(&tag);
        self.snapshot_days.insert(tag.clone(), self.day);

        // 4. Multicast the incremental diff to all online compute nodes.
        let stream = self.scvol.send_latest().expect("snapshot just created");
        let wire = stream.wire_bytes();
        let online: Vec<NodeId> = (0..self.nodes.len() as u32)
            .filter(|&n| self.nodes[n as usize].online)
            .collect();
        let mut transfer_secs = 0.0;
        if !online.is_empty() {
            let src = self.config.compute_nodes; // first storage node
            transfer_secs = self.net.multicast(src, &online, wire);
        }
        // One prepared stream, N independent receivers: apply it to every
        // online ccVolume concurrently instead of N serial recv replays.
        let targets: Vec<&mut ZPool> = self
            .nodes
            .iter_mut()
            .filter(|n| n.online)
            .map(|n| &mut n.ccvol)
            .collect();
        let mut updated = 0;
        for result in stream.apply_all(targets, self.config.threads) {
            match result {
                Ok(()) => updated += 1,
                Err(RecvError::MissingBase(_)) => {
                    // Shouldn't happen for online nodes; they sync on rejoin.
                }
                Err(RecvError::DuplicateTip(_)) => unreachable!("fresh tag"),
            }
        }

        // First boot takes a normal boot's time (paper: ~20 s), snapshot
        // creation is cheap, multicast as computed.
        let first_boot = self
            .sim
            .boot(
                &paper_scale_trace(self.paper_ws_bytes(image), image as u64),
                &Backend::ColdCache {
                    net_mbps: self.config.link.mbps(),
                    image_bytes: self.paper_image_bytes(image),
                },
            )
            .total_seconds;

        self.registered.insert(image, Registration { snapshot_tag: tag.clone(), day: self.day });
        Ok(RegisterReport {
            image,
            cache_bytes,
            diff_wire_bytes: wire,
            nodes_updated: updated,
            seconds: first_boot + 1.0 + transfer_secs,
            snapshot_tag: tag,
        })
    }

    /// Paper-volume working-set bytes of `image` (scaled back up).
    fn paper_ws_bytes(&self, image: ImageId) -> u64 {
        self.corpus.image(image).cache().bytes() * self.corpus.config().scale
    }

    /// Paper-volume virtual image size.
    fn paper_image_bytes(&self, image: ImageId) -> u64 {
        self.corpus.image(image).virtual_bytes() * self.corpus.config().scale
    }

    /// Boot `image` on compute node `node` (paper Section 3.3): warm when
    /// the ccVolume holds the cache (zero network I/O), cold otherwise
    /// (CoW over the parallel file system).
    pub fn boot(&mut self, node: NodeId, image: ImageId) -> Result<BootOutcome, SquirrelError> {
        let n = self
            .nodes
            .get(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        if !n.online {
            return Err(SquirrelError::NodeOffline(node));
        }
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }

        let name = Self::cache_file_name(image);
        let trace = paper_scale_trace(self.paper_ws_bytes(image), image as u64);
        let warm = n.ccvol.has_file(&name);

        if warm {
            // Derive dedup-backend parameters from the real ccVolume.
            let stats = n.ccvol.stats();
            let scale = self.corpus.config().scale;
            let threshold = 1 + n.ccvol.snapshot_tags().len() as u64;
            let shared = n
                .ccvol
                .file_shared_fraction(&name, threshold)
                .unwrap_or(0.6);
            let params = DedupVolumeParams {
                record_size: self.config.block_size as u64,
                compressed_fraction: (stats.physical_bytes as f64
                    / (stats.unique_blocks.max(1) * stats.block_size) as f64)
                    .clamp(0.05, 1.0),
                ddt_entries: stats.unique_blocks * scale / self.config.block_size as u64 * 512,
                pool_physical_bytes: (stats.physical_bytes * scale).max(1),
                shared_fraction: shared,
                ..DedupVolumeParams::new(self.config.block_size as u64)
            };
            let report = self.sim.boot(&trace, &Backend::DedupVolume(params));
            Ok(BootOutcome { image, node, warm: true, net_bytes: 0, report })
        } else {
            // Cold path: the boot working set crosses the network from the
            // parallel file system (charged at corpus scale in the ledger,
            // simulated at paper scale for timing).
            let ws_corpus_scale = self.corpus.image(image).cache().bytes();
            self.gluster.read(&mut self.net, node, 0, ws_corpus_scale);
            let report = self.sim.boot(
                &trace,
                &Backend::ColdCache {
                    net_mbps: self.config.link.mbps(),
                    image_bytes: self.paper_image_bytes(image),
                },
            );
            Ok(BootOutcome {
                image,
                node,
                warm: false,
                net_bytes: ws_corpus_scale,
                report,
            })
        }
    }

    /// Deregister an image (paper Section 3.4): delete the VMI and its
    /// cache from the scVolume. No snapshot is taken; the deletion reaches
    /// ccVolumes with the next registration's diff.
    pub fn deregister(&mut self, image: ImageId) -> Result<(), SquirrelError> {
        let reg = self
            .registered
            .remove(&image)
            .ok_or(SquirrelError::NotRegistered(image))?;
        let _ = reg;
        self.scvol.delete_file(&Self::cache_file_name(image));
        Ok(())
    }

    /// Daily garbage collection (paper Section 3.4): on every cVolume, keep
    /// snapshots from the last `n` days plus the latest one regardless of
    /// age.
    pub fn gc(&mut self) {
        let cutoff = self.day.saturating_sub(self.config.gc_window_days);
        let latest = self.scvol.latest_snapshot().map(|s| s.to_string());
        let doomed: Vec<String> = self
            .scvol
            .snapshot_tags()
            .iter()
            .filter(|t| {
                Some(**t) != latest.as_deref()
                    && self.snapshot_days.get(**t).copied().unwrap_or(0) < cutoff
            })
            .map(|t| t.to_string())
            .collect();
        for tag in &doomed {
            self.scvol.destroy_snapshot(tag);
            for node in &mut self.nodes {
                node.ccvol.destroy_snapshot(tag);
            }
            self.snapshot_days.remove(tag);
        }
    }

    /// Take a compute node offline (fail-stop).
    pub fn node_offline(&mut self, node: NodeId) -> Result<(), SquirrelError> {
        self.nodes
            .get_mut(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?
            .online = false;
        Ok(())
    }

    /// Bring a node back (paper Section 3.5): ask for the diff between its
    /// latest local snapshot and the scVolume's latest; if the base is gone
    /// (offline longer than `n` days), replicate the whole scVolume.
    pub fn node_rejoin(&mut self, node: NodeId) -> Result<RejoinOutcome, SquirrelError> {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return Err(SquirrelError::NoSuchNode(node));
        }
        self.nodes[idx].online = true;

        let sc_latest = match self.scvol.latest_snapshot() {
            Some(t) => t.to_string(),
            None => return Ok(RejoinOutcome::UpToDate),
        };
        let local_latest = self.nodes[idx].ccvol.latest_snapshot().map(|s| s.to_string());
        if local_latest.as_deref() == Some(sc_latest.as_str()) {
            return Ok(RejoinOutcome::UpToDate);
        }

        let storage = self.config.compute_nodes;
        // Try incremental first.
        if let Some(base) = &local_latest {
            if self.scvol.has_snapshot(base) {
                let stream = self
                    .scvol
                    .send_between(Some(base), &sc_latest)
                    .expect("both snapshots exist");
                let wire = stream.wire_bytes();
                self.net.unicast(storage, node, wire);
                // Same application path as the registration multicast,
                // with a single catch-up target.
                stream
                    .apply_all(vec![&mut self.nodes[idx].ccvol], self.config.threads)
                    .pop()
                    .expect("one target")
                    .expect("base verified present");
                return Ok(RejoinOutcome::Incremental { wire_bytes: wire });
            }
        }

        // Full replication: rebuild the ccVolume from a full stream.
        let stream = self
            .scvol
            .send_between(None, &sc_latest)
            .expect("latest snapshot exists");
        let wire = stream.wire_bytes();
        self.net.unicast(storage, node, wire);
        let mut fresh = ZPool::new(
            PoolConfig::new(self.config.block_size, self.config.codec)
                .with_threads(self.config.threads),
        );
        stream
            .apply_all(vec![&mut fresh], self.config.threads)
            .pop()
            .expect("one target")
            .expect("full stream");
        self.nodes[idx].ccvol = fresh;
        Ok(RejoinOutcome::FullReplication { wire_bytes: wire })
    }

    /// Replay `image`'s boot trace on `node` through the *real* data path —
    /// a QCOW2-style CoW overlay chained onto a copy-on-read layer that is
    /// pre-populated from the node's ccVolume (decompressing actual pool
    /// records) and backed by the image over the parallel FS — verifying
    /// every byte against the image's ground-truth content.
    ///
    /// Returns `(bytes_verified, backing_fetches)`; a warm cache must give
    /// zero backing fetches for reads inside the working set.
    pub fn verify_boot(
        &mut self,
        node: NodeId,
        image: ImageId,
    ) -> Result<(u64, u64), SquirrelError> {
        let n = self
            .nodes
            .get(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        if !n.online {
            return Err(SquirrelError::NodeOffline(node));
        }
        if (image as usize) >= self.corpus.len() {
            return Err(SquirrelError::UnknownImage(image));
        }

        let bs = self.config.block_size;
        let mut chain = squirrel_qcow::CowImage::new(CorCache::new(
            ImageDisk { corpus: Arc::clone(&self.corpus), image },
            bs,
        ));
        // Warm the CoR layer from the ccVolume's cache file, exercising the
        // full decompress path of the pool.
        let name = Self::cache_file_name(image);
        if let Some(len) = n.ccvol.file_len(&name) {
            let blocks = len.div_ceil(bs as u64);
            for b in 0..blocks {
                let data = n.ccvol.read_block(&name, b).expect("file exists");
                chain.backing().prepopulate(b, &data);
            }
        }

        let handle = self.corpus.image(image);
        let trace = handle.cache().boot_trace();
        let mut verified = 0u64;
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for op in &trace.ops {
            expect.resize(op.len as usize, 0);
            got.resize(op.len as usize, 0);
            handle.read_at(op.offset, &mut expect);
            chain.read_at(op.offset, &mut got);
            if expect != got {
                panic!(
                    "boot data corruption: image {image} node {node} at offset {}",
                    op.offset
                );
            }
            verified += op.len as u64;
        }
        Ok((verified, chain.backing().fetch_count))
    }

    /// Boot a sequence of images on `node`, reading every cache block
    /// through a byte-bounded ARC, and report the cache statistics. This
    /// *measures* the cross-VMI hot-record effect that the boot simulator's
    /// `hot_fraction` parameter assumes: records shared between working
    /// sets stay resident across consecutive boots of different images.
    pub fn measure_arc_hit_rate(
        &mut self,
        node: NodeId,
        images: &[ImageId],
        arc_bytes: u64,
    ) -> Result<squirrel_zfs::ArcStats, SquirrelError> {
        let n = self
            .nodes
            .get(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        if !n.online {
            return Err(SquirrelError::NodeOffline(node));
        }
        let bs = self.config.block_size as u64;
        let mut arc = squirrel_zfs::ArcCache::new(arc_bytes);
        for &image in images {
            if (image as usize) >= self.corpus.len() {
                return Err(SquirrelError::UnknownImage(image));
            }
            let name = Self::cache_file_name(image);
            let Some(len) = n.ccvol.file_len(&name) else {
                continue; // not hoarded: nothing to measure
            };
            for b in 0..len.div_ceil(bs) {
                arc.read_through(&n.ccvol, &name, b);
            }
        }
        Ok(arc.stats())
    }

    /// Evict one cache from one node's ccVolume (models a capacity-limited
    /// node running a replacement policy instead of full scatter hoarding —
    /// the traditional alternative the paper argues against). Returns `true`
    /// if the cache was present. Subsequent boots of that image on that
    /// node take the cold path until the next diff restores it.
    pub fn evict_cache(&mut self, node: NodeId, image: ImageId) -> Result<bool, SquirrelError> {
        let n = self
            .nodes
            .get_mut(node as usize)
            .ok_or(SquirrelError::NoSuchNode(node))?;
        let name = Self::cache_file_name(image);
        let had = n.ccvol.has_file(&name);
        n.ccvol.delete_file(&name);
        Ok(had)
    }

    /// Whether `node`'s ccVolume currently holds `image`'s cache.
    pub fn has_cache(&self, node: NodeId, image: ImageId) -> bool {
        self.nodes
            .get(node as usize)
            .is_some_and(|n| n.ccvol.has_file(&Self::cache_file_name(image)))
    }

    // --- introspection for experiments and tests ---------------------------

    pub fn registered_images(&self) -> Vec<ImageId> {
        self.registered.keys().copied().collect()
    }

    /// Snapshot tag and registration day of `image`, if registered.
    pub fn registration_info(&self, image: ImageId) -> Option<(&str, u64)> {
        self.registered
            .get(&image)
            .map(|r| (r.snapshot_tag.as_str(), r.day))
    }

    pub fn is_registered(&self, image: ImageId) -> bool {
        self.registered.contains_key(&image)
    }

    pub fn scvol_stats(&self) -> SpaceStats {
        self.scvol.stats()
    }

    pub fn ccvol_stats(&self, node: NodeId) -> Option<SpaceStats> {
        self.nodes.get(node as usize).map(|n| n.ccvol.stats())
    }

    pub fn ccvol_file_count(&self, node: NodeId) -> Option<usize> {
        self.nodes.get(node as usize).map(|n| n.ccvol.file_count())
    }

    pub fn node_is_online(&self, node: NodeId) -> bool {
        self.nodes.get(node as usize).is_some_and(|n| n.online)
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Consistency check: every online node's ccVolume mirrors the
    /// scVolume's state *as of its latest snapshot* — deregistrations after
    /// the last snapshot intentionally haven't propagated yet (they ride
    /// along with the next registration's diff, paper Section 3.4).
    pub fn check_replication(&self) -> bool {
        let reference: Vec<&str> = match self.scvol.latest_snapshot() {
            Some(tag) => self
                .scvol
                .snapshot_file_names(tag)
                .expect("latest snapshot exists"),
            None => self.scvol.file_names().collect(),
        };
        self.nodes.iter().filter(|n| n.online).all(|n| {
            let cc: Vec<&str> = n.ccvol.file_names().collect();
            cc == reference
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squirrel_dataset::CorpusConfig;

    fn small_system(nodes: u32) -> Squirrel {
        let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
        Squirrel::new(
            SquirrelConfig {
                compute_nodes: nodes,
                block_size: 16 * 1024,
                ..Default::default()
            },
            corpus,
        )
    }

    #[test]
    fn register_propagates_to_all_nodes() {
        let mut sq = small_system(4);
        let r = sq.register(0).expect("register");
        assert_eq!(r.nodes_updated, 4);
        assert!(r.cache_bytes > 0);
        assert!(r.diff_wire_bytes > 0);
        assert!(sq.check_replication());
        for n in 0..4 {
            assert_eq!(sq.ccvol_file_count(n), Some(1));
        }
    }

    #[test]
    fn register_is_identical_at_any_thread_count() {
        let run = |threads: usize| {
            let corpus = Arc::new(Corpus::generate(CorpusConfig::test_corpus(8, 77)));
            let mut sq = Squirrel::new(
                SquirrelConfig {
                    compute_nodes: 4,
                    block_size: 16 * 1024,
                    threads,
                    ..Default::default()
                },
                corpus,
            );
            let r0 = sq.register(0).expect("r0");
            let r1 = sq.register(1).expect("r1");
            assert!(sq.check_replication(), "threads={threads}");
            assert_eq!(r0.nodes_updated, 4);
            assert_eq!(r1.nodes_updated, 4);
            (sq.scvol_stats(), sq.ccvol_stats(0).expect("node"), r0.diff_wire_bytes)
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn register_twice_fails() {
        let mut sq = small_system(2);
        sq.register(1).expect("first");
        assert!(matches!(
            sq.register(1),
            Err(SquirrelError::AlreadyRegistered(1))
        ));
    }

    #[test]
    fn warm_boot_has_zero_network_traffic() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        sq.network_mut().reset_ledgers();
        let out = sq.boot(1, 0).expect("boot");
        assert!(out.warm);
        assert_eq!(out.net_bytes, 0);
        assert_eq!(sq.network().ledger(1).rx_bytes, 0);
        assert!(out.report.total_seconds > 5.0 && out.report.total_seconds < 60.0);
    }

    #[test]
    fn cold_boot_crosses_network() {
        let mut sq = small_system(2);
        sq.network_mut().reset_ledgers();
        let out = sq.boot(0, 3).expect("boot unregistered image");
        assert!(!out.warm);
        assert!(out.net_bytes > 0);
        assert_eq!(sq.network().ledger(0).rx_bytes, out.net_bytes);
    }

    #[test]
    fn warm_boot_faster_than_cold() {
        let mut sq = small_system(2);
        sq.register(2).expect("register");
        let warm = sq.boot(0, 2).expect("warm");
        let cold = sq.boot(1, 3).expect("cold");
        assert!(
            warm.report.total_seconds < cold.report.total_seconds,
            "warm {} cold {}",
            warm.report.total_seconds,
            cold.report.total_seconds
        );
    }

    #[test]
    fn deregister_then_next_register_propagates_deletion() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.register(1).expect("r1");
        sq.deregister(0).expect("deregister");
        // ccVolumes still hold cache-0 (no snapshot on delete).
        assert_eq!(sq.ccvol_file_count(0), Some(2));
        sq.register(2).expect("r2");
        // The new diff carries the deletion.
        assert_eq!(sq.ccvol_file_count(0), Some(2));
        assert!(sq.check_replication());
    }

    #[test]
    fn offline_node_misses_diffs_then_catches_up_incrementally() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(2).expect("offline");
        sq.register(1).expect("r1");
        assert_eq!(sq.ccvol_file_count(2), Some(1), "missed the diff");
        let outcome = sq.node_rejoin(2).expect("rejoin");
        assert!(matches!(outcome, RejoinOutcome::Incremental { .. }), "{outcome:?}");
        assert!(sq.check_replication());
    }

    #[test]
    fn long_offline_node_needs_full_replication() {
        let mut sq = small_system(3);
        sq.register(0).expect("r0");
        sq.node_offline(1).expect("offline");
        sq.advance_days(10);
        sq.register(1).expect("r1");
        sq.advance_days(10);
        sq.register(2).expect("r2");
        sq.gc(); // collects vmi-0 and vmi-1 (older than the window)
        let outcome = sq.node_rejoin(1).expect("rejoin");
        assert!(
            matches!(outcome, RejoinOutcome::FullReplication { .. }),
            "{outcome:?}"
        );
        assert!(sq.check_replication());
    }

    #[test]
    fn gc_keeps_latest_snapshot_regardless_of_age() {
        let mut sq = small_system(2);
        sq.register(0).expect("r0");
        sq.advance_days(100);
        sq.gc();
        assert!(sq.scvol_stats().unique_blocks > 0);
        // Latest snapshot must survive.
        let outcome = sq.node_rejoin(0).expect("rejoin");
        assert_eq!(outcome, RejoinOutcome::UpToDate);
    }

    #[test]
    fn rejoin_when_up_to_date_is_noop() {
        let mut sq = small_system(2);
        sq.register(0).expect("r0");
        let outcome = sq.node_rejoin(1).expect("rejoin");
        assert_eq!(outcome, RejoinOutcome::UpToDate);
    }

    #[test]
    fn boot_on_offline_node_fails() {
        let mut sq = small_system(2);
        sq.node_offline(0).expect("offline");
        assert!(matches!(sq.boot(0, 0), Err(SquirrelError::NodeOffline(0))));
    }

    #[test]
    fn scvol_grows_sublinearly_with_registrations() {
        // The scatter-hoarding feasibility claim: caches dedup heavily.
        // Use a corpus whose head images are all Ubuntu (the census head),
        // like the real catalog where one family dominates.
        let corpus = Arc::new(Corpus::generate(
            CorpusConfig { scale: 1024, ..CorpusConfig::test_corpus(16, 77) },
        ));
        let mut sq = Squirrel::new(
            SquirrelConfig { compute_nodes: 1, block_size: 16 * 1024, ..Default::default() },
            corpus,
        );
        sq.register(0).expect("r");
        let one = sq.scvol_stats().total_disk_bytes();
        for i in 1..8 {
            sq.register(i).expect("r");
        }
        let eight = sq.scvol_stats().total_disk_bytes();
        assert!(
            (eight as f64) < 5.0 * one as f64,
            "eight caches {eight} vs one {one}: dedup must help"
        );
    }

    #[test]
    fn errors_on_unknown_entities() {
        let mut sq = small_system(1);
        assert!(matches!(sq.register(999), Err(SquirrelError::UnknownImage(999))));
        assert!(matches!(sq.deregister(0), Err(SquirrelError::NotRegistered(0))));
        assert!(matches!(sq.boot(9, 0), Err(SquirrelError::NoSuchNode(9))));
        assert!(matches!(sq.node_offline(9), Err(SquirrelError::NoSuchNode(9))));
    }

    #[test]
    fn arc_hit_rate_rises_with_cross_vmi_sharing() {
        // Booting several same-family images back to back: later boots hit
        // the records earlier boots left resident.
        let corpus = Arc::new(Corpus::generate(
            CorpusConfig { scale: 1024, ..CorpusConfig::test_corpus(12, 77) },
        ));
        let mut sq = Squirrel::new(
            SquirrelConfig { compute_nodes: 1, block_size: 16 * 1024, ..Default::default() },
            corpus,
        );
        for img in 0..6 {
            sq.register(img).expect("register");
        }
        let one = sq.measure_arc_hit_rate(0, &[0], 64 << 20).expect("one image");
        let many = sq
            .measure_arc_hit_rate(0, &[0, 1, 2, 3, 4, 5], 64 << 20)
            .expect("many images");
        assert_eq!(one.hits, 0, "first boot of a lone image cannot hit");
        assert!(
            many.hit_rate() > 0.2,
            "cross-VMI sharing must produce ARC hits: {:?}",
            many
        );
    }

    #[test]
    fn verify_boot_serves_exact_bytes_from_warm_cache() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        let (verified, fetches) = sq.verify_boot(1, 0).expect("verify");
        assert!(verified > 0);
        // The QCOW2 cluster over-fetch may cross the working-set boundary
        // once at the tail; everything inside the set must be served warm.
        assert!(fetches <= 2, "warm boot fetched {fetches} blocks from the base");
    }

    #[test]
    fn verify_boot_without_cache_fetches_from_backing() {
        let mut sq = small_system(1);
        let (verified, fetches) = sq.verify_boot(0, 1).expect("verify");
        assert!(verified > 0);
        assert!(fetches > 0, "cold path must reach the base image");
    }

    #[test]
    fn evicted_cache_forces_cold_boot_until_restored() {
        let mut sq = small_system(2);
        sq.register(0).expect("register");
        assert!(sq.has_cache(1, 0));
        assert!(sq.evict_cache(1, 0).expect("evict"));
        assert!(!sq.has_cache(1, 0));
        // Node 1 now cold-boots image 0; node 0 still warm.
        assert!(!sq.boot(1, 0).expect("boot").warm);
        assert!(sq.boot(0, 0).expect("boot").warm);
        // Idempotent eviction.
        assert!(!sq.evict_cache(1, 0).expect("evict again"));
    }

    #[test]
    fn registration_info_reflects_clock() {
        let mut sq = small_system(1);
        sq.advance_days(3);
        sq.register(0).expect("register");
        let (tag, day) = sq.registration_info(0).expect("registered");
        assert_eq!(tag, "vmi-000000-r1");
        assert_eq!(day, 3);
        assert_eq!(sq.registration_info(5), None);
    }

    #[test]
    fn registration_report_times_are_plausible() {
        let mut sq = small_system(2);
        let r = sq.register(0).expect("register");
        // Paper: registration "does not take more than a minute".
        assert!(r.seconds > 10.0 && r.seconds < 120.0, "{}", r.seconds);
    }
}
