//! Copy-on-write images and copy-on-read caches — the VMI chaining layer of
//! the paper's Figure 1.
//!
//! Three pieces compose a boot chain:
//!
//! * [`VirtualDisk`] — the read interface every layer speaks.
//! * [`CowImage`] — a QCOW2-like copy-on-write overlay: writes allocate
//!   cluster-granular private copies; reads of unallocated clusters pass to
//!   the backing layer as *whole-cluster* requests. That over-fetch is the
//!   mechanism behind the paper's observation (Section 4.2.3) that warm
//!   caches boot ~16% faster than local images: the host page cache keeps
//!   the surplus sectors, which belong to the boot working set anyway.
//! * [`CorCache`] — a copy-on-read cache: block-granular, populated on
//!   first access (the cold-cache path of Figure 1), serving locally from
//!   then on (warm). Squirrel stores these per-VMI caches in its cVolumes.
//!
//! Every layer can record the request log it *issues downward*, which the
//! boot simulator turns into seek/transfer timings.

mod cor;
mod cow;
mod disk;

pub use cor::CorCache;
pub use cow::CowImage;
pub use disk::{MemDisk, ReadLog, VirtualDisk, ZeroDisk};
