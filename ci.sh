#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — every
# dependency is in-tree (see the std-only policy in README.md / vendor/).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== examples (release) =="
for ex in quickstart node_churn elastic_scaling azure_fleet block_size_tuning; do
    echo "-- example: $ex"
    cargo run --release --quiet --example "$ex" > /dev/null
done

echo "== boot-storm bench smoke (release) =="
rm -f results/BENCH_bootstorm.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    bootstorm --images 16 --scale 8192 --seed 7 --threads 2 > /dev/null
test -f results/BENCH_bootstorm.json
grep -q '"deterministic_across_threads": true' results/BENCH_bootstorm.json
# Warm storm served from the shared ARC: hit rate strictly positive, and
# not a single payload byte copied.
grep -Eq '"arc_hit_rate": 0\.[0-9]*[1-9]' results/BENCH_bootstorm.json
grep -q '"payload_bytes_copied": 0,' results/BENCH_bootstorm.json

echo "== ingest bench smoke (release) =="
rm -f results/BENCH_ingest.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    ingest | grep '^ingest '
test -f results/BENCH_ingest.json
# The parallel import leaves bit-identical pool state and metrics at every
# thread count (the run aborts otherwise), carries the per-stage wall-clock
# breakdown, and is never slower than serial at threads 2 or 8.
grep -q '"deterministic_across_threads": true' results/BENCH_ingest.json
grep -q '"prepare_ns"' results/BENCH_ingest.json
grep -q '"probe_ns"' results/BENCH_ingest.json
grep -q '"compress_ns"' results/BENCH_ingest.json
grep -q '"commit_ns"' results/BENCH_ingest.json
grep -q '"speedup_gate": "pass"' results/BENCH_ingest.json

echo "== chaos soak (release, pinned seed) =="
rm -f results/BENCH_chaos.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    chaos --images 12 --seed 2014 > /dev/null
test -f results/BENCH_chaos.json
# The soak must converge to a consistent, scrub-clean state and replay
# bit-identically at every thread count of the sweep.
grep -q '"converged": true' results/BENCH_chaos.json
grep -q '"scrub_clean": true' results/BENCH_chaos.json
grep -q '"deterministic_across_threads": true' results/BENCH_chaos.json
# Chaos actually happened: the plan injected a nonzero number of faults.
grep -Eq '"faults_injected": [1-9]' results/BENCH_chaos.json

echo "== topology / erasure-coding bench (release, pinned seed) =="
rm -f results/BENCH_topology.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    topology --images 8 --scale 8192 --seed 2014 > /dev/null
test -f results/BENCH_topology.json
# The erasure-coded shared tier must ride out a whole-rack loss (every
# object readable byte-for-byte through parity reconstruction) and scrub
# back to clean by re-homing shards across racks; the multi-rack chaos
# soak must converge scrub-clean and replay bit-identically at every
# thread count, with at least one correlated domain outage injected.
grep -q '"ec_survives_rack_loss": true' results/BENCH_topology.json
grep -q '"converged": true' results/BENCH_topology.json
grep -q '"scrub_clean": true' results/BENCH_topology.json
grep -q '"deterministic_across_threads": true' results/BENCH_topology.json
grep -Eq '"rack_outages": [1-9]' results/BENCH_topology.json
grep -Eq '"ec_repair_bytes": [1-9]' results/BENCH_topology.json

echo "== hoard-budget sweep smoke (release, pinned seed) =="
rm -f results/BENCH_budget.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    budget --images 8 --scale 8192 --seed 7 --threads 2 > /dev/null
test -f results/BENCH_budget.json
# Eviction decisions and metric snapshots replay bit-identically at every
# thread count; a generous budget degrades nothing, a starved one must
# push a strictly positive share of boots to shared storage.
grep -q '"deterministic_across_threads": true' results/BENCH_budget.json
grep -q '"generous_degraded_boot_rate": 0,' results/BENCH_budget.json
grep -Eq '"starved_degraded_boot_rate": (0\.[0-9]*[1-9][0-9]*|1)' results/BENCH_budget.json

echo "== distribution sweep smoke (release, pinned seed) =="
rm -f results/BENCH_distribution.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    distribution --images 8 --scale 8192 --seed 7 --threads 2 > /dev/null
test -f results/BENCH_distribution.json
# Peer-assisted and tree-multicast delivery must cut the storage-tier
# uplink strictly below serial unicast once the fleet scales (1k and 10k
# node points), and every policy must replay bit-identically at every
# thread count of the sweep.
grep -q '"peer_below_unicast_1k": true' results/BENCH_distribution.json
grep -q '"peer_below_unicast_10k": true' results/BENCH_distribution.json
grep -q '"multicast_below_unicast_1k": true' results/BENCH_distribution.json
grep -q '"deterministic_across_threads": true' results/BENCH_distribution.json

echo "== fleet soak smoke (release, pinned seed) =="
rm -f results/BENCH_fleet.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    fleet --images 8 --scale 8192 --seed 2014 --threads 2 > /dev/null
test -f results/BENCH_fleet.json
# Three simulated days of Zipf + diurnal demand over 100- and 1000-node
# elastic fleets must replay bit-identically at every thread count, keep
# p99 boot latency finite and the degraded-boot rate bounded, and
# peer-assisted distribution must move strictly fewer storage-tier bytes
# per day than unicast at the exact same degraded-boot rate.
grep -q '"deterministic_across_threads": true' results/BENCH_fleet.json
grep -q '"p99_finite": true' results/BENCH_fleet.json
grep -q '"degraded_rate_bounded": true' results/BENCH_fleet.json
grep -q '"degraded_rates_equal": true' results/BENCH_fleet.json
grep -q '"peer_storage_below_unicast": true' results/BENCH_fleet.json

echo "== chunking sweep smoke (release, pinned seed) =="
rm -f results/BENCH_chunking.json
cargo run --release --quiet -p squirrel-bench --bin squirrel-experiments -- \
    chunking --images 8 --scale 8192 --seed 7 --threads 2 > /dev/null
test -f results/BENCH_chunking.json
# Every {strategy, mode} cell leaves bit-identical pool state and send
# streams at threads 1/2/8; the reverse-dedup warm boot never loses to
# forward at identical physical bytes; CDC never stores more than fixed
# records on the byte-shifted version chain.
grep -q '"deterministic_across_threads": true' results/BENCH_chunking.json
grep -q '"reverse_not_slower": true' results/BENCH_chunking.json
grep -q '"cdc_dedup_gte_fixed": true' results/BENCH_chunking.json

echo "== decode fuzz smoke (release, fixed seeds) =="
cargo test -q --release -p squirrel-zfs decode_survives > /dev/null

echo "== ARC differential proptest (release, name-seeded) =="
cargo test -q --release -p squirrel-zfs differential_shared_vs_serial > /dev/null

echo "ci.sh: all checks passed"
