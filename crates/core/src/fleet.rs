//! Fleet-scale traffic simulation on the discrete-event scheduler.
//!
//! This is ROADMAP item 5 wired together: a paper-shaped catalog (the Azure
//! census at a byte-volume divisor), seeded Zipf + diurnal demand emitting
//! boot and storm events over O(1k) compute nodes, elastic autoscaling
//! (nodes leave overnight and rejoin — re-hoarding through the configured
//! [`DistributionPolicy`] — as the morning ramp needs them), popularity
//! decay feeding hoard-budget enforcement on a cadence, and periodic
//! GC/scrub/fault events reusing the seeded [`FaultPlan`].
//!
//! Demand is *semantics-aware*: Zipf ranks are assigned over the catalog
//! ordered by OS family and release, so the heavy head of the distribution
//! lands on one family cluster — the shape "Semantics-aware VMI Management"
//! (PAPERS.md) observes in production catalogs.
//!
//! Everything runs off one [`EventQueue`] keyed by
//! `(time_ms, seq)` and one SplitMix64 stream drawn only in the serial event
//! loop: for a pinned [`FleetConfig`] the whole soak — every boot latency,
//! every per-day byte tally, every metric snapshot — is bit-identical at any
//! worker-thread count. Equality of two [`FleetReport`]s *is* the
//! determinism witness.

use crate::dist::DistributionPolicy;
use crate::sched::EventQueue;
use crate::system::{HoardBudget, Squirrel, SquirrelConfig};
use squirrel_cluster::NodeId;
use squirrel_dataset::rng::{SplitMix64, Zipf};
use squirrel_dataset::{Corpus, CorpusConfig, ImageId};
use squirrel_faults::{ChurnEvent, FaultConfig, FaultPlan, FaultReport, PartitionEvent};
use squirrel_hash::ContentHash;
use std::sync::Arc;

const HOUR_MS: u64 = 3_600_000;
const DAY_MS: u64 = 24 * HOUR_MS;

/// Relative demand weight per hour of day: overnight trough, morning ramp,
/// business-hours plateau, evening peak. Integer weights keep every demand
/// computation exact.
const DIURNAL: [u64; 24] = [
    2, 1, 1, 1, 1, 2, // 00:00–05:59 trough
    3, 5, 8, 10, 11, 12, // 06:00–11:59 ramp
    12, 11, 11, 10, 10, 11, // 12:00–17:59 plateau
    12, 13, 12, 9, 6, 3, // 18:00–23:59 evening peak, wind-down
];

const fn diurnal_sum() -> u64 {
    let mut s = 0;
    let mut i = 0;
    while i < 24 {
        s += DIURNAL[i];
        i += 1;
    }
    s
}

const DIURNAL_SUM: u64 = diurnal_sum();
/// Peak hourly weight — the hour the fleet must be fully scaled out for.
const DIURNAL_MAX: u64 = 13;

/// Shape of one fleet soak. Everything derives from `seed`; two configs that
/// compare equal produce bit-identical [`FleetReport`]s at any thread count.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Simulated days to run.
    pub days: u64,
    /// Catalog size (Azure-census shape; 607 = the paper's full catalog).
    pub images: u32,
    /// Corpus byte-volume divisor versus the paper's geometry.
    pub scale: u64,
    /// Fleet size: compute-node slots the autoscaler can fill.
    pub nodes: u32,
    /// Autoscale floor: nodes kept online through the overnight trough.
    pub min_online: u32,
    /// Master seed for the corpus, the demand stream and the fault plan.
    pub seed: u64,
    /// Worker threads (`0` = all cores). Results are bit-identical at any
    /// setting.
    pub threads: usize,
    /// Zipf exponent of image popularity (~1.1; must not be exactly 1).
    pub zipf_exponent: f64,
    /// Individual boots per simulated day, apportioned over the diurnal
    /// curve.
    pub boots_per_day: u32,
    /// A correlated boot storm every this many days (0 disables).
    pub storm_every_days: u64,
    /// VMs per boot storm.
    pub storm_vms: u32,
    /// Catalog registrations rolled out per day until it is exhausted.
    pub registrations_per_day: u32,
    /// Popularity decay factor applied on the maintenance cadence.
    pub decay_factor: f64,
    /// Days between maintenance passes (decay + budget enforcement;
    /// 0 disables).
    pub decay_every_days: u64,
    /// Days between GC passes (0 disables).
    pub gc_every_days: u64,
    /// Days between scrub/repair passes (0 disables).
    pub repair_every_days: u64,
    /// Per-node hoard budget the maintenance pass enforces.
    pub budget: HoardBudget,
    /// How registration diffs, rejoin streams and re-hoards travel.
    pub distribution: DistributionPolicy,
    /// Fault probabilities drawn by the daily fault tick and armed under
    /// every delivery.
    pub faults: FaultConfig,
    /// Pool record size.
    pub block_size: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            days: 4,
            images: 12,
            scale: 8192,
            nodes: 24,
            min_online: 6,
            seed: 42,
            threads: 0,
            zipf_exponent: 1.1,
            boots_per_day: 96,
            storm_every_days: 2,
            storm_vms: 12,
            registrations_per_day: 4,
            decay_factor: 0.5,
            decay_every_days: 1,
            gc_every_days: 1,
            repair_every_days: 2,
            budget: HoardBudget::unlimited(),
            distribution: DistributionPolicy::Unicast,
            faults: FaultConfig::default(),
            block_size: 16 * 1024,
        }
    }
}

/// One simulated day's roll-up. Pure integers — `Eq` across thread counts is
/// the determinism witness; latencies are rounded milliseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetDay {
    pub day: u64,
    /// Successful boots (individual + storm VMs).
    pub boots: u64,
    pub warm_boots: u64,
    /// Boots served degraded from shared storage (corrupt or evicted cache).
    pub degraded_boots: u64,
    /// Boot attempts that failed (no capacity, unreachable storage, errored
    /// storm). Failed boots never count toward popularity.
    pub failed_boots: u64,
    pub storms: u64,
    pub p50_boot_ms: u64,
    pub p99_boot_ms: u64,
    /// Bytes the storage tier transmitted this day (ledger delta): cold
    /// reads, registration diffs, rejoin streams served by the scVolume.
    pub storage_tier_bytes: u64,
    /// Bytes warm compute peers transmitted on the tier's behalf.
    pub peer_bytes: u64,
    /// Autoscale (and churn-recovery) rejoins.
    pub joins: u64,
    /// Autoscale scale-downs.
    pub leaves: u64,
    /// Whole-cache evictions by the maintenance pass.
    pub evictions: u64,
    pub registrations: u64,
}

/// Outcome of one fleet soak.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct FleetReport {
    pub nodes: u32,
    /// Events the scheduler processed.
    pub events: u64,
    /// Per-day roll-ups, in day order.
    pub days: Vec<FleetDay>,
    pub boots: u64,
    pub warm_boots: u64,
    pub degraded_boots: u64,
    pub failed_boots: u64,
    pub storms: u64,
    /// Whole-run latency percentiles (rounded milliseconds).
    pub p50_boot_ms: u64,
    pub p99_boot_ms: u64,
    /// Degraded boots per 10 000 successful boots.
    pub degraded_per_10k: u64,
    pub storage_tier_bytes: u64,
    pub peer_bytes: u64,
    pub joins: u64,
    pub leaves: u64,
    pub evictions: u64,
    /// Maintenance passes that ran popularity decay.
    pub popularity_decays: u64,
    /// Images whose popularity cooled to zero across all decay passes.
    pub images_cooled: u64,
    /// Corrupt records healed by the periodic repair passes.
    pub blocks_repaired: u64,
    /// Hash over every workflow outcome in order — the determinism witness.
    pub read_checksum: String,
    /// Everything the fault plan injected.
    pub fault: FaultReport,
}

impl FleetReport {
    /// Mean storage-tier bytes per simulated day.
    pub fn storage_bytes_per_day(&self) -> u64 {
        self.storage_tier_bytes / (self.days.len().max(1) as u64)
    }
}

/// Event payloads. Demand draws happen in the serial event loop (at schedule
/// time for boots, at fire time for storms), so payloads stay small and the
/// one RNG stream orders every decision.
enum Event {
    /// Hourly autoscale + demand generation for the hour ahead.
    HourTick,
    /// Roll one catalog image out to the fleet.
    Register(ImageId),
    /// One VM boot: preferred node slot and image drawn at schedule time.
    Boot { slot: u32, image: ImageId },
    /// A correlated boot storm (image drawn at fire time).
    Storm,
    /// Daily seeded churn/partition/rot draws from the armed plan.
    FaultTick,
    /// Popularity decay + hoard-budget enforcement.
    Maintenance,
    Gc,
    Repair,
    /// Day-boundary roll-up.
    DayEnd,
}

/// Counters accumulated between day boundaries.
#[derive(Default)]
struct DayAcc {
    lat_ms: Vec<u64>,
    boots: u64,
    warm: u64,
    degraded: u64,
    failed: u64,
    storms: u64,
    joins: u64,
    leaves: u64,
    evictions: u64,
    registrations: u64,
}

/// Boots apportioned to `hour` (of the whole run): cumulative-quota
/// dithering over the diurnal weights, so every day's hours sum exactly to
/// `boots_per_day`.
fn hour_boots(boots_per_day: u64, hour: u64) -> u64 {
    let h = (hour % 24) as usize;
    let before: u64 = DIURNAL[..h].iter().sum();
    let lo = before * boots_per_day / DIURNAL_SUM;
    let hi = (before + DIURNAL[h]) * boots_per_day / DIURNAL_SUM;
    hi - lo
}

/// Online-node target for hour-of-day `h`: the floor plus the diurnal share
/// of the elastic span, fully scaled out at the peak weight.
fn target_online(cfg: &FleetConfig, h: usize) -> u32 {
    let floor = cfg.min_online.clamp(1, cfg.nodes);
    let span = u64::from(cfg.nodes - floor);
    floor + (span * DIURNAL[h] / DIURNAL_MAX) as u32
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    match sorted.len() {
        0 => 0,
        n => sorted[((n as u64 - 1) * p / 100) as usize],
    }
}

/// Run one fleet soak. See the module docs for the determinism contract.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    run_fleet_with_metrics(cfg).0
}

/// [`run_fleet`], additionally returning the final metrics snapshot of the
/// internal system — the second half of the thread-invariance witness
/// (snapshot equality across `threads` settings).
pub fn run_fleet_with_metrics(
    cfg: &FleetConfig,
) -> (FleetReport, squirrel_obs::MetricsSnapshot) {
    assert!(cfg.days > 0 && cfg.nodes > 0 && cfg.images > 0, "empty fleet config");
    let corpus_cfg = CorpusConfig {
        n_images: cfg.images,
        ..CorpusConfig::azure(cfg.scale, cfg.seed)
    };
    let corpus = Arc::new(Corpus::generate(corpus_cfg));

    // Semantics-aware demand ranks: the catalog ordered by (family, release,
    // id), so Zipf's heavy head lands on one OS-family cluster.
    let mut rank_to_image: Vec<ImageId> = (0..cfg.images).collect();
    rank_to_image.sort_by_key(|&img| {
        let spec = &corpus.images()[img as usize];
        (spec.family, spec.release, img)
    });

    let mut sq = Squirrel::new(
        SquirrelConfig {
            compute_nodes: cfg.nodes,
            block_size: cfg.block_size,
            threads: cfg.threads,
            hoard_budget: cfg.budget,
            distribution: cfg.distribution,
            ..Default::default()
        },
        Arc::clone(&corpus),
    );
    sq.set_fault_plan(FaultPlan::new(cfg.seed, cfg.faults));
    let obs = sq.obs_handle().clone();
    let storage: NodeId = cfg.nodes; // first storage node id

    let zipf = Zipf::new(u64::from(cfg.images), cfg.zipf_exponent);
    let mut rng = SplitMix64::from_parts(&[cfg.seed, 0xf1ee7]);

    // Prime the horizon: hour ticks, day boundaries, the registration
    // rollout and every cadenced maintenance event. Demand events are
    // scheduled dynamically by the hour ticks.
    let mut q: EventQueue<Event> = EventQueue::new();
    let mut next_image: u32 = 0;
    for day in 0..cfg.days {
        let base = day * DAY_MS;
        for h in 0..24u64 {
            q.push(base + h * HOUR_MS, Event::HourTick);
        }
        for k in 0..u64::from(cfg.registrations_per_day) {
            if next_image < cfg.images {
                q.push(base + HOUR_MS + k * 60_000, Event::Register(next_image));
                next_image += 1;
            }
        }
        q.push(base + HOUR_MS / 2, Event::FaultTick);
        let due = |every: u64| every > 0 && (day + 1) % every == 0;
        if due(cfg.decay_every_days) {
            q.push(base + 3 * HOUR_MS, Event::Maintenance);
        }
        if due(cfg.gc_every_days) {
            q.push(base + 4 * HOUR_MS, Event::Gc);
        }
        if due(cfg.repair_every_days) {
            q.push(base + 5 * HOUR_MS, Event::Repair);
        }
        q.push(base + DAY_MS - 1, Event::DayEnd);
    }

    let mut report = FleetReport { nodes: cfg.nodes, ..FleetReport::default() };
    let mut feed = String::new();
    let mut acc = DayAcc::default();
    let mut all_ms: Vec<u64> = Vec::new();
    let (mut prev_storage_tx, mut prev_peer_tx) = (0u64, 0u64);

    while let Some(ev) = q.pop() {
        report.events += 1;
        let t = ev.time_ms;
        match ev.event {
            Event::HourTick => {
                let hour = t / HOUR_MS;
                let h = (hour % 24) as usize;
                // Autoscale toward the diurnal target: rejoin lowest-id
                // offline nodes on the ramp (catching up through the
                // configured distribution policy), shed highest-id online
                // nodes on the wind-down.
                let target = target_online(cfg, h);
                let online: Vec<NodeId> =
                    (0..cfg.nodes).filter(|&n| sq.node_is_online(n)).collect();
                if (online.len() as u32) < target {
                    let mut need = target - online.len() as u32;
                    for n in 0..cfg.nodes {
                        if need == 0 {
                            break;
                        }
                        if !sq.node_is_online(n) {
                            need -= 1;
                            match sq.node_rejoin(n) {
                                Ok(_) => {
                                    acc.joins += 1;
                                    obs.inc("squirrel_fleet_joins_total");
                                }
                                Err(e) => feed.push_str(&format!("join-err:{n}:{e}\n")),
                            }
                        }
                    }
                } else if (online.len() as u32) > target {
                    for &n in online.iter().rev().take(online.len() - target as usize) {
                        let _ = sq.node_offline(n);
                        acc.leaves += 1;
                        obs.inc("squirrel_fleet_leaves_total");
                    }
                }
                obs.set_gauge(
                    "squirrel_fleet_online_nodes",
                    (0..cfg.nodes).filter(|&n| sq.node_is_online(n)).count() as u64,
                );

                // The hour's demand: Zipf image, uniform preferred slot,
                // uniform start inside the hour (strictly before the day
                // boundary, so attribution never slips a day).
                for _ in 0..hour_boots(u64::from(cfg.boots_per_day), hour) {
                    let image = rank_to_image[zipf.sample(&mut rng) as usize];
                    let slot = rng.below(u64::from(cfg.nodes)) as u32;
                    let at = t + rng.below(HOUR_MS - 1000);
                    q.push(at, Event::Boot { slot, image });
                }
                if cfg.storm_every_days > 0
                    && h == 20
                    && (hour / 24 + 1).is_multiple_of(cfg.storm_every_days)
                {
                    q.push(t + rng.below(HOUR_MS - 1000), Event::Storm);
                }
            }
            Event::Register(image) => {
                acc.registrations += 1;
                match sq.register(image) {
                    Ok(rep) => feed.push_str(&format!(
                        "reg:{image}:{}:{}:{}\n",
                        rep.snapshot_tag, rep.nodes_updated, rep.diff_wire_bytes
                    )),
                    Err(e) => feed.push_str(&format!("reg-err:{image}:{e}\n")),
                }
            }
            Event::Boot { slot, image } => {
                // Place the VM on the first online node scanning up from the
                // preferred slot (a deterministic stand-in for a placement
                // scheduler).
                let node = (0..cfg.nodes)
                    .map(|k| (slot + k) % cfg.nodes)
                    .find(|&n| sq.node_is_online(n));
                let Some(node) = node else {
                    acc.failed += 1;
                    obs.inc("squirrel_fleet_failed_boots_total");
                    feed.push_str("boot-nocap\n");
                    continue;
                };
                match sq.boot(node, image) {
                    Ok(out) => {
                        let ms = out.report.total_millis();
                        acc.lat_ms.push(ms);
                        acc.boots += 1;
                        acc.warm += u64::from(out.warm);
                        acc.degraded += u64::from(out.degraded);
                        obs.inc("squirrel_fleet_boots_total");
                        obs.observe("squirrel_fleet_boot_ms", ms);
                        if out.degraded {
                            obs.inc("squirrel_fleet_degraded_total");
                        }
                        feed.push_str(&format!(
                            "boot:{node}:{image}:{}:{}:{ms}\n",
                            out.warm, out.degraded
                        ));
                    }
                    Err(e) => {
                        acc.failed += 1;
                        obs.inc("squirrel_fleet_failed_boots_total");
                        feed.push_str(&format!("boot-err:{node}:{image}:{e}\n"));
                    }
                }
            }
            Event::Storm => {
                let image = rank_to_image[zipf.sample(&mut rng) as usize];
                match sq.boot_storm(image, cfg.storm_vms) {
                    Ok(storm) => {
                        acc.storms += 1;
                        acc.boots += u64::from(storm.vms);
                        acc.warm += u64::from(storm.warm_vms);
                        acc.degraded += u64::from(storm.degraded_vms);
                        obs.add("squirrel_fleet_boots_total", u64::from(storm.vms));
                        for &s in &storm.boot_seconds {
                            let ms = (s * 1000.0).round() as u64;
                            acc.lat_ms.push(ms);
                            obs.observe("squirrel_fleet_boot_ms", ms);
                        }
                        if storm.degraded_vms > 0 {
                            obs.add(
                                "squirrel_fleet_degraded_total",
                                u64::from(storm.degraded_vms),
                            );
                        }
                        feed.push_str(&format!("storm:{image}:{}\n", storm.read_checksum));
                    }
                    Err(e) => {
                        acc.failed += u64::from(cfg.storm_vms);
                        obs.add(
                            "squirrel_fleet_failed_boots_total",
                            u64::from(cfg.storm_vms),
                        );
                        feed.push_str(&format!("storm-err:{image}:{e}\n"));
                    }
                }
            }
            Event::FaultTick => {
                // Chaos-style serial draws: detach the plan, draw the day's
                // environment events, re-arm it so deliveries keep drawing
                // from the same stream.
                let mut plan = sq.clear_fault_plan().expect("plan armed");
                let churn = plan.churn_event(cfg.nodes, |n| sq.node_is_online(n));
                let cut = plan.partition_event(storage, cfg.nodes, |n| {
                    !sq.network().is_reachable(storage, n)
                });
                let rot = plan.block_corruption(cfg.nodes);
                sq.set_fault_plan(plan);
                match churn {
                    Some(ChurnEvent::Offline(n)) => {
                        let _ = sq.node_offline(n);
                        feed.push_str(&format!("churn-off:{n}\n"));
                    }
                    Some(ChurnEvent::Rejoin(n)) | Some(ChurnEvent::Flap(n)) => {
                        if matches!(churn, Some(ChurnEvent::Flap(_))) {
                            let _ = sq.node_offline(n);
                        }
                        let ok = sq.node_rejoin(n).is_ok();
                        feed.push_str(&format!("churn-join:{n}:{ok}\n"));
                    }
                    None => {}
                }
                match cut {
                    Some(PartitionEvent::Cut(a, b)) => sq.network_mut().partition(a, b),
                    Some(PartitionEvent::Heal(a, b)) => sq.network_mut().heal(a, b),
                    _ => {}
                }
                if let Some((victim, nth)) = rot {
                    let key = match victim {
                        Some(n) => sq.corrupt_cc_block(n, nth),
                        None => sq.corrupt_sc_block(nth),
                    };
                    feed.push_str(&format!("rot:{victim:?}:{}\n", key.is_some()));
                }
            }
            Event::Maintenance => {
                let cooled = sq.decay_popularity(cfg.decay_factor);
                report.popularity_decays += 1;
                report.images_cooled += cooled;
                feed.push_str(&format!("decay:{cooled}\n"));
                if !cfg.budget.is_unlimited() {
                    let b = sq.enforce_hoard_budgets();
                    acc.evictions += b.evictions.len() as u64;
                    feed.push_str(&format!(
                        "budget:{}:{}\n",
                        b.evictions.len(),
                        b.nodes_over_budget
                    ));
                }
            }
            Event::Gc => {
                let gc = sq.gc();
                feed.push_str(&format!("gc:{}\n", gc.snapshots_collected));
            }
            Event::Repair => {
                let sc = sq.scrub_and_repair_scvol();
                let mut repaired = sc.repaired;
                for n in 0..cfg.nodes {
                    if !sq.node_is_online(n) {
                        continue;
                    }
                    if let Ok(rep) = sq.scrub_and_repair(n) {
                        repaired += rep.repaired;
                    }
                }
                let sync = sq.repair_replication();
                report.blocks_repaired += repaired;
                feed.push_str(&format!("repair:{repaired}:{}\n", sync.repaired));
            }
            Event::DayEnd => {
                let day = t / DAY_MS;
                acc.lat_ms.sort_unstable();
                let storage_tx = sq.network().storage_tx_total();
                let peer_tx = sq.network().compute_tx_total();
                let row = FleetDay {
                    day,
                    boots: acc.boots,
                    warm_boots: acc.warm,
                    degraded_boots: acc.degraded,
                    failed_boots: acc.failed,
                    storms: acc.storms,
                    p50_boot_ms: percentile(&acc.lat_ms, 50),
                    p99_boot_ms: percentile(&acc.lat_ms, 99),
                    storage_tier_bytes: storage_tx - prev_storage_tx,
                    peer_bytes: peer_tx - prev_peer_tx,
                    joins: acc.joins,
                    leaves: acc.leaves,
                    evictions: acc.evictions,
                    registrations: acc.registrations,
                };
                prev_storage_tx = storage_tx;
                prev_peer_tx = peer_tx;
                obs.event(
                    "fleet_day",
                    &[
                        ("day", day.into()),
                        ("boots", row.boots.into()),
                        ("p50_ms", row.p50_boot_ms.into()),
                        ("p99_ms", row.p99_boot_ms.into()),
                        ("degraded", row.degraded_boots.into()),
                        ("storage_bytes", row.storage_tier_bytes.into()),
                        ("peer_bytes", row.peer_bytes.into()),
                    ],
                );
                feed.push_str(&format!(
                    "day:{day}:{}:{}:{}:{}:{}\n",
                    row.boots,
                    row.p50_boot_ms,
                    row.p99_boot_ms,
                    row.storage_tier_bytes,
                    row.peer_bytes
                ));
                all_ms.extend(std::mem::take(&mut acc.lat_ms));
                report.boots += row.boots;
                report.warm_boots += row.warm_boots;
                report.degraded_boots += row.degraded_boots;
                report.failed_boots += row.failed_boots;
                report.storms += row.storms;
                report.storage_tier_bytes += row.storage_tier_bytes;
                report.peer_bytes += row.peer_bytes;
                report.joins += row.joins;
                report.leaves += row.leaves;
                report.evictions += row.evictions;
                report.days.push(row);
                acc = DayAcc::default();
                sq.advance_days(1);
            }
        }
    }

    all_ms.sort_unstable();
    report.p50_boot_ms = percentile(&all_ms, 50);
    report.p99_boot_ms = percentile(&all_ms, 99);
    report.degraded_per_10k = report.degraded_boots * 10_000 / report.boots.max(1);
    report.fault = sq.clear_fault_plan().expect("plan armed").report();
    report.read_checksum = ContentHash::of(feed.as_bytes()).to_hex();
    let snapshot = sq.metrics().snapshot();
    (report, snapshot)
}

impl Squirrel {
    /// Run a fleet-scale soak (see [`run_fleet`]). Like
    /// [`chaos_soak`](crate::chaos::chaos_soak), the system is built from
    /// the config internally — the soak owns its whole lifecycle.
    pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
        run_fleet(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            days: 2,
            images: 6,
            nodes: 8,
            min_online: 3,
            boots_per_day: 48,
            storm_vms: 6,
            registrations_per_day: 3,
            seed: 11,
            threads: 1,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_soak_runs_the_whole_horizon() {
        let r = run_fleet(&tiny());
        assert_eq!(r.days.len(), 2);
        assert_eq!(r.boots + r.failed_boots, 48 * 2 + 6, "demand + one storm");
        assert!(r.boots > 0, "{r:?}");
        assert!(r.p99_boot_ms >= r.p50_boot_ms, "{r:?}");
        assert!(r.p99_boot_ms > 0, "{r:?}");
        assert!(r.joins > 0 && r.leaves > 0, "autoscaler must act: {r:?}");
        assert_eq!(r.popularity_decays, 2);
        let registered: u64 = r.days.iter().map(|d| d.registrations).sum();
        assert_eq!(registered, 6);
    }

    #[test]
    fn fleet_soak_is_bit_identical_for_one_seed() {
        let a = run_fleet(&tiny());
        let b = run_fleet(&tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_soak_is_thread_count_invariant() {
        let at = |threads| run_fleet(&FleetConfig { threads, ..tiny() });
        let reference = at(1);
        for threads in [2, 8] {
            assert_eq!(at(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn different_seeds_give_different_trajectories() {
        let a = run_fleet(&tiny());
        let b = run_fleet(&FleetConfig { seed: 12, ..tiny() });
        assert_ne!(a.read_checksum, b.read_checksum);
    }

    #[test]
    fn diurnal_demand_sums_to_the_daily_quota() {
        for bpd in [1u64, 7, 48, 96, 1000] {
            let total: u64 = (0..24).map(|h| hour_boots(bpd, h)).sum();
            assert_eq!(total, bpd, "boots_per_day={bpd}");
        }
    }

    #[test]
    fn autoscale_targets_follow_the_curve() {
        let cfg = FleetConfig { nodes: 100, min_online: 10, ..FleetConfig::default() };
        let trough = target_online(&cfg, 1);
        let peak = target_online(&cfg, 19);
        assert_eq!(peak, 100, "peak hour scales fully out");
        assert!(trough < peak, "{trough} vs {peak}");
        assert!(trough >= 10);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
    }
}
